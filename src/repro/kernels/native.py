"""ctypes bindings over the compiled kernel library.

Loading goes through :func:`load`: build (cached) → ``dlopen`` →
prototype every symbol → ABI check.  The binding layer is intentionally
thin — argument marshalling is raw pointers over contiguous ndarrays,
and every call releases the GIL for its whole duration (ctypes drops it
around foreign calls), which is the property the thread backend of the
execution engine relies on.

All wrappers assume the dispatch layer (:mod:`repro.kernels`) has
already normalised dtypes and contiguity; they only assert, never
convert, so the native path never hides a copy.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Tuple

import numpy as np

from repro.kernels.build import KernelBuildError, build_native

_i64 = ctypes.c_int64
_int = ctypes.c_int
#: all array arguments pass as raw addresses (``ndarray.ctypes.data``):
#: cheaper per call than ``data_as`` pointer casts, which matters for
#: the per-partition build/probe kernels called hundreds of times per
#: query.  The dispatch layer already guarantees dtype and contiguity.
_ptr_t = ctypes.c_void_p

#: kernel suffix per partition-index dtype
_PART_VARIANTS = {
    np.dtype(np.uint8): "u8",
    np.dtype(np.uint16): "u16",
    np.dtype(np.int64): "i64",
}

#: SWWC buffering pays off while the buffer pool stays cache resident;
#: past this fan-out the plain cursor scatter wins (pool > L2).
SWWC_MAX_PARTITIONS = 1 << 13


def _addr(array: np.ndarray) -> int:
    """Raw data address of a contiguous ndarray (for ``c_void_p``)."""
    return array.ctypes.data


class NativeKernels:
    """Handle over the loaded library; one instance per process."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        self._hash_hist = {}
        self._scatter = {}
        self._swwc = {}
        self._swwc_mt = {}
        for dtype, suffix in _PART_VARIANTS.items():
            fn = getattr(lib, f"repro_hash_hist_{suffix}")
            fn.argtypes = [
                _ptr_t, _i64, _i64, _int, _i64, _i64,
                _ptr_t, _ptr_t, _ptr_t,
            ]
            fn.restype = None
            self._hash_hist[dtype] = fn

            fn = getattr(lib, f"repro_scatter_{suffix}")
            fn.argtypes = [_ptr_t, _ptr_t, _ptr_t, _i64, _ptr_t,
                           _ptr_t, _ptr_t]
            fn.restype = None
            self._scatter[dtype] = fn

            fn = getattr(lib, f"repro_swwc_scatter_{suffix}")
            fn.argtypes = [_ptr_t, _ptr_t, _ptr_t, _i64, _i64, _i64,
                           _ptr_t, _ptr_t, _ptr_t]
            fn.restype = _int
            self._swwc[dtype] = fn

            fn = getattr(lib, f"repro_swwc_scatter_mt_{suffix}")
            fn.argtypes = [_ptr_t, _ptr_t, _ptr_t, _i64, _i64, _i64,
                           _i64, _ptr_t, _ptr_t, _ptr_t]
            fn.restype = _int
            self._swwc_mt[dtype] = fn

        self._hash_only = {}
        for dtype in (np.dtype(np.uint16), np.dtype(np.int64)):
            fn = getattr(lib, f"repro_hash_only_{_PART_VARIANTS[dtype]}")
            fn.argtypes = [_ptr_t, _i64, _i64, _int, _ptr_t]
            fn.restype = None
            self._hash_only[dtype] = fn

        fn = lib.repro_bucket_build
        fn.argtypes = [_ptr_t, _i64, _i64, _ptr_t, _ptr_t]
        fn.restype = None
        self._bucket_build = fn

        fn = lib.repro_bucket_probe
        fn.argtypes = [_ptr_t, _ptr_t, _ptr_t, _i64, _ptr_t, _i64,
                       _ptr_t, _ptr_t, _i64, _ptr_t]
        fn.restype = _i64
        self._bucket_probe = fn

    # -- wrappers -------------------------------------------------------

    def hash_histogram(
        self,
        keys: np.ndarray,
        num_partitions: int,
        use_hash: bool,
        lanes: Optional[int],
        global_offset: int,
        parts_out: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Fused hash + histogram (+ lane histogram) over one morsel."""
        fn = self._hash_hist[parts_out.dtype]
        hist = np.zeros(num_partitions, dtype=np.int64)
        if lanes is not None:
            lane_hist = np.zeros((num_partitions, lanes), dtype=np.int64)
            lane_ptr = _addr(lane_hist)
            lane_count = lanes
        else:
            lane_hist = None
            lane_ptr = None
            lane_count = 0
        fn(
            _addr(keys),
            keys.shape[0],
            num_partitions,
            1 if use_hash else 0,
            lane_count,
            global_offset,
            _addr(parts_out),
            _addr(hist),
            lane_ptr,
        )
        return parts_out, hist, lane_hist

    def hash_only(
        self,
        keys: np.ndarray,
        num_partitions: int,
        use_hash: bool,
        parts_out: np.ndarray,
    ) -> np.ndarray:
        """Partition indices only (no counting)."""
        fn = self._hash_only[parts_out.dtype]
        fn(
            _addr(keys),
            keys.shape[0],
            num_partitions,
            1 if use_hash else 0,
            _addr(parts_out),
        )
        return parts_out

    def scatter(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        parts: np.ndarray,
        cursor: np.ndarray,
        out_keys: np.ndarray,
        out_payloads: np.ndarray,
    ) -> None:
        """Stable cursor scatter; ``cursor`` is advanced in place."""
        fn = self._scatter[parts.dtype]
        fn(
            _addr(keys),
            _addr(payloads),
            _addr(parts),
            keys.shape[0],
            _addr(cursor),
            _addr(out_keys),
            _addr(out_payloads),
        )

    def swwc_scatter(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        parts: np.ndarray,
        num_partitions: int,
        buffer_tuples: int,
        cursor: np.ndarray,
        out_keys: np.ndarray,
        out_payloads: np.ndarray,
        threads: int = 1,
    ) -> None:
        """Buffered (write-combine) scatter; same bytes as scatter().

        ``threads > 1`` flushes partition ranges in parallel (each
        thread owns a contiguous range of cursors, so the output stays
        byte-identical to the serial scatter).
        """
        if threads > 1:
            fn = self._swwc_mt[parts.dtype]
            status = fn(
                _addr(keys),
                _addr(payloads),
                _addr(parts),
                keys.shape[0],
                num_partitions,
                buffer_tuples,
                threads,
                _addr(cursor),
                _addr(out_keys),
                _addr(out_payloads),
            )
        else:
            fn = self._swwc[parts.dtype]
            status = fn(
                _addr(keys),
                _addr(payloads),
                _addr(parts),
                keys.shape[0],
                num_partitions,
                buffer_tuples,
                _addr(cursor),
                _addr(out_keys),
                _addr(out_payloads),
            )
        if status != 0:  # pragma: no cover - malloc failure path
            self.scatter(keys, payloads, parts, cursor, out_keys,
                         out_payloads)

    def bucket_build(
        self,
        keys: np.ndarray,
        num_buckets: int,
        heads: np.ndarray,
        nxt: np.ndarray,
    ) -> None:
        """Front-insertion chain build over a build-side key array."""
        self._bucket_build(
            _addr(keys),
            keys.shape[0],
            num_buckets,
            _addr(heads),
            _addr(nxt),
        )

    def bucket_probe(
        self,
        build_keys: np.ndarray,
        heads: np.ndarray,
        nxt: np.ndarray,
        num_buckets: int,
        probe_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Chain-walk probe (probe-major emission, like the NumPy walk).

        Returns ``(probe_idx, build_idx, hops)``.  The initial output
        capacity carries 25% headroom over the probe count so near-1:1
        joins finish in one walk; if the true match count still exceeds
        it, the kernel reports the count and the walk re-runs once with
        exact-size buffers.
        """
        m = int(probe_keys.shape[0])
        capacity = m + m // 4 + 64
        hops = np.zeros(1, dtype=np.int64)
        while True:
            out_probe = np.empty(capacity, dtype=np.int64)
            out_build = np.empty(capacity, dtype=np.int64)
            count = int(
                self._bucket_probe(
                    _addr(build_keys),
                    _addr(heads),
                    _addr(nxt),
                    num_buckets,
                    _addr(probe_keys),
                    m,
                    _addr(out_probe),
                    _addr(out_build),
                    capacity,
                    _addr(hops),
                )
            )
            if count <= capacity:
                return out_probe[:count], out_build[:count], int(hops[0])
            capacity = count


def load() -> NativeKernels:
    """Build (if needed) and load the native library.

    Raises :class:`KernelBuildError` when the build fails, the library
    cannot be loaded, or its ABI stamp does not match this binding.
    """
    path = build_native()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as error:
        raise KernelBuildError(
            f"cannot load kernel library {path}: {error}"
        ) from error
    try:
        abi = lib.repro_kernels_abi
        abi.restype = ctypes.c_int
        version = int(abi())
    except AttributeError as error:
        raise KernelBuildError(
            f"kernel library {path} has no ABI stamp"
        ) from error
    if version != 3:
        raise KernelBuildError(
            f"kernel library ABI {version} != expected 3 (stale cache?)"
        )
    return NativeKernels(lib)
