"""ctypes bindings over the compiled kernel library.

Loading goes through :func:`load`: build (cached) → ``dlopen`` →
prototype every symbol → ABI check.  The binding layer is intentionally
thin — argument marshalling is raw pointers over contiguous ndarrays,
and every call releases the GIL for its whole duration (ctypes drops it
around foreign calls), which is the property the thread backend of the
execution engine relies on.

All wrappers assume the dispatch layer (:mod:`repro.kernels`) has
already normalised dtypes and contiguity; they only assert, never
convert, so the native path never hides a copy.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Tuple

import numpy as np

from repro.kernels.build import KernelBuildError, build_native

_i64 = ctypes.c_int64
_int = ctypes.c_int
_p_u32 = ctypes.POINTER(ctypes.c_uint32)
_p_i64 = ctypes.POINTER(ctypes.c_int64)

#: kernel suffix + ctypes pointer type per partition-index dtype
_PART_VARIANTS = {
    np.dtype(np.uint8): ("u8", ctypes.POINTER(ctypes.c_uint8)),
    np.dtype(np.uint16): ("u16", ctypes.POINTER(ctypes.c_uint16)),
    np.dtype(np.int64): ("i64", ctypes.POINTER(ctypes.c_int64)),
}

#: SWWC buffering pays off while the buffer pool stays cache resident;
#: past this fan-out the plain cursor scatter wins (pool > L2).
SWWC_MAX_PARTITIONS = 1 << 13


class NativeKernels:
    """Handle over the loaded library; one instance per process."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        self._hash_hist = {}
        self._scatter = {}
        self._swwc = {}
        for dtype, (suffix, part_ptr) in _PART_VARIANTS.items():
            fn = getattr(lib, f"repro_hash_hist_{suffix}")
            fn.argtypes = [
                _p_u32, _i64, _i64, _int, _i64, _i64,
                part_ptr, _p_i64, _p_i64,
            ]
            fn.restype = None
            self._hash_hist[dtype] = (fn, part_ptr)

            fn = getattr(lib, f"repro_scatter_{suffix}")
            fn.argtypes = [_p_u32, _p_u32, part_ptr, _i64, _p_i64,
                           _p_u32, _p_u32]
            fn.restype = None
            self._scatter[dtype] = (fn, part_ptr)

            fn = getattr(lib, f"repro_swwc_scatter_{suffix}")
            fn.argtypes = [_p_u32, _p_u32, part_ptr, _i64, _i64, _i64,
                           _p_i64, _p_u32, _p_u32]
            fn.restype = _int
            self._swwc[dtype] = (fn, part_ptr)

        self._hash_only = {}
        for dtype, suffix in (
            (np.dtype(np.uint16), "u16"),
            (np.dtype(np.int64), "i64"),
        ):
            fn = getattr(lib, f"repro_hash_only_{suffix}")
            fn.argtypes = [_p_u32, _i64, _i64, _int,
                           _PART_VARIANTS[dtype][1]]
            fn.restype = None
            self._hash_only[dtype] = fn

    # -- wrappers -------------------------------------------------------

    @staticmethod
    def _ptr(array: np.ndarray, pointer_type):
        return array.ctypes.data_as(pointer_type)

    def hash_histogram(
        self,
        keys: np.ndarray,
        num_partitions: int,
        use_hash: bool,
        lanes: Optional[int],
        global_offset: int,
        parts_out: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Fused hash + histogram (+ lane histogram) over one morsel."""
        fn, part_ptr = self._hash_hist[parts_out.dtype]
        hist = np.zeros(num_partitions, dtype=np.int64)
        if lanes is not None:
            lane_hist = np.zeros((num_partitions, lanes), dtype=np.int64)
            lane_ptr = self._ptr(lane_hist, _p_i64)
            lane_count = lanes
        else:
            lane_hist = None
            lane_ptr = _p_i64()
            lane_count = 0
        fn(
            self._ptr(keys, _p_u32),
            keys.shape[0],
            num_partitions,
            1 if use_hash else 0,
            lane_count,
            global_offset,
            self._ptr(parts_out, part_ptr),
            self._ptr(hist, _p_i64),
            lane_ptr,
        )
        return parts_out, hist, lane_hist

    def hash_only(
        self,
        keys: np.ndarray,
        num_partitions: int,
        use_hash: bool,
        parts_out: np.ndarray,
    ) -> np.ndarray:
        """Partition indices only (no counting)."""
        fn = self._hash_only[parts_out.dtype]
        fn(
            self._ptr(keys, _p_u32),
            keys.shape[0],
            num_partitions,
            1 if use_hash else 0,
            parts_out.ctypes.data_as(_PART_VARIANTS[parts_out.dtype][1]),
        )
        return parts_out

    def scatter(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        parts: np.ndarray,
        cursor: np.ndarray,
        out_keys: np.ndarray,
        out_payloads: np.ndarray,
    ) -> None:
        """Stable cursor scatter; ``cursor`` is advanced in place."""
        fn, part_ptr = self._scatter[parts.dtype]
        fn(
            self._ptr(keys, _p_u32),
            self._ptr(payloads, _p_u32),
            self._ptr(parts, part_ptr),
            keys.shape[0],
            self._ptr(cursor, _p_i64),
            self._ptr(out_keys, _p_u32),
            self._ptr(out_payloads, _p_u32),
        )

    def swwc_scatter(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        parts: np.ndarray,
        num_partitions: int,
        buffer_tuples: int,
        cursor: np.ndarray,
        out_keys: np.ndarray,
        out_payloads: np.ndarray,
    ) -> None:
        """Buffered (write-combine) scatter; same bytes as scatter()."""
        fn, part_ptr = self._swwc[parts.dtype]
        status = fn(
            self._ptr(keys, _p_u32),
            self._ptr(payloads, _p_u32),
            self._ptr(parts, part_ptr),
            keys.shape[0],
            num_partitions,
            buffer_tuples,
            self._ptr(cursor, _p_i64),
            self._ptr(out_keys, _p_u32),
            self._ptr(out_payloads, _p_u32),
        )
        if status != 0:  # pragma: no cover - malloc failure path
            self.scatter(keys, payloads, parts, cursor, out_keys,
                         out_payloads)


def load() -> NativeKernels:
    """Build (if needed) and load the native library.

    Raises :class:`KernelBuildError` when the build fails, the library
    cannot be loaded, or its ABI stamp does not match this binding.
    """
    path = build_native()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as error:
        raise KernelBuildError(
            f"cannot load kernel library {path}: {error}"
        ) from error
    try:
        abi = lib.repro_kernels_abi
        abi.restype = ctypes.c_int
        version = int(abi())
    except AttributeError as error:
        raise KernelBuildError(
            f"kernel library {path} has no ABI stamp"
        ) from error
    if version != 1:
        raise KernelBuildError(
            f"kernel library ABI {version} != expected 1 (stale cache?)"
        )
    return NativeKernels(lib)
