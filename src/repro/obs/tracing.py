"""Span-based tracing: follow one request through the whole stack.

The paper's headline claims are latency and throughput claims, yet the
service layer's :class:`~repro.service.metrics.ServiceMetrics` only
aggregates — it cannot answer *where one request's time went* between
``submit()`` and its ticket resolving.  This module is the software
equivalent of instrumenting a dataflow pipeline per stage: a
dependency-free tracer in the shape of OpenTelemetry's span model,
small enough to live on the hot path.

* :class:`Span` — one named, timed operation with attributes, events
  and a parent link.  Spans nest per thread; cross-thread stages (a
  request submitted on a client thread, executed on the dispatcher)
  link explicitly via ``parent=`` or retroactive
  :meth:`Tracer.record_span` calls.
* :class:`Tracer` — thread-safe factory and ring-buffer exporter.
  Finished spans land in a bounded deque (oldest evicted first, with a
  ``dropped`` counter — tracing must never grow memory without bound,
  the same stance as the admission queue it observes).
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled path.  Every
  instrumentation point costs one no-op call and zero clock reads, so
  tracing off stays within noise of untraced code (pinned by
  ``benchmarks/bench_trace_overhead.py``).

Exports: :meth:`Tracer.to_jsonl` writes one JSON object per line (the
structured trace log ``repro trace`` and ``repro serve --trace-out``
emit); Prometheus rollups live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import collections
import itertools
import json
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "OperatorTimes",
    "Span",
    "Tracer",
    "operator_times",
    "resolve_tracer",
]


class Span:
    """One named, timed operation in a trace.

    Use as a context manager (via :meth:`Tracer.span`) or end manually
    with :meth:`end`.  Attributes are free-form key/value pairs (keep
    values JSON-native); events are timestamped point annotations.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "attributes",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start_s: float,
        tracer: Optional["Tracer"],
        attributes: Optional[dict] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, object] = attributes or {}
        self.events: List[dict] = []
        self._tracer = tracer

    # -- recording ------------------------------------------------------

    def set_attribute(self, key: str, value) -> "Span":
        """Attach one attribute; returns the span for chaining."""
        self.attributes[key] = value
        return self

    def set_attributes(self, **attributes) -> "Span":
        """Attach several attributes at once."""
        self.attributes.update(attributes)
        return self

    def add_event(self, name: str, **attributes) -> "Span":
        """Record a timestamped point annotation inside this span."""
        tracer = self._tracer
        stamp = tracer._clock() if tracer is not None else self.start_s
        self.events.append(
            {"name": name, "time_s": stamp, "attributes": attributes}
        )
        return self

    def end(self, end_s: Optional[float] = None) -> None:
        """Finish the span and hand it to the tracer's ring buffer."""
        if self.end_s is not None:  # already ended (idempotent)
            return
        tracer = self._tracer
        self.end_s = (
            end_s
            if end_s is not None
            else (tracer._clock() if tracer is not None else self.start_s)
        )
        if tracer is not None:
            tracer._finish(self)

    # -- reading --------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def to_dict(self) -> dict:
        """JSON-native form (one JSONL trace-log line)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
            "events": self.events,
        }

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration_s:.6f}s)"
        )


class Tracer:
    """Thread-safe span factory with a bounded ring-buffer exporter.

    Args:
        capacity: finished-span ring-buffer size; the oldest spans are
            evicted first and counted in :attr:`dropped`.
        clock: injectable monotonic clock.  Defaults to
            ``time.monotonic`` — the same default as the service layer,
            so retroactive :meth:`record_span` timestamps taken from
            service clocks land on the same timeline.

    Nesting is per-thread: :meth:`span` parents the new span under the
    thread's innermost open span.  Stages that hop threads pass
    ``parent=`` explicitly.
    """

    #: instrumentation points can branch on this instead of paying for
    #: argument packing when tracing is off
    enabled = True

    def __init__(self, capacity: int = 65536, clock=time.monotonic):
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: "collections.deque[Span]" = collections.deque(
            maxlen=capacity
        )
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: finished spans evicted from the ring buffer
        self.dropped = 0
        #: spans started / finished (diagnostics; finished >= len(buffer))
        self.started = 0
        self.finished = 0

    # -- span creation --------------------------------------------------

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes,
    ) -> Span:
        """Open a span as a context manager::

            with tracer.span("execute", backend="fpga") as span:
                ...
                span.set_attribute("attempts", attempts)

        The span becomes the thread's current span until the ``with``
        block exits; nested :meth:`span` calls parent under it.
        """
        span = self.start_span(name, parent=parent, **attributes)
        self._stack().append(span)
        return span

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes,
    ) -> Span:
        """Open a span *without* making it the thread's current span.

        For cross-thread stages (e.g. a request span opened at submit
        time on a client thread and resolved by the dispatcher); end it
        with :meth:`Span.end`.
        """
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else None
        span_id = next(self._ids)
        trace_id = parent.trace_id if parent is not None else span_id
        with self._lock:
            self.started += 1
        return Span(
            name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start_s=self._clock(),
            tracer=self,
            attributes=attributes or None,
        )

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[Span] = None,
        **attributes,
    ) -> Span:
        """Record a retroactive span from explicit timestamps.

        This is how stages measured by other components' clocks enter
        the trace — e.g. ``queue_wait``, whose start is the submit
        timestamp taken on the client thread.  The timestamps must come
        from the same clock the tracer uses.
        """
        span_id = next(self._ids)
        trace_id = parent.trace_id if parent is not None else span_id
        span = Span(
            name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start_s=start_s,
            tracer=self,
            attributes=attributes or None,
        )
        with self._lock:
            self.started += 1
        span.end(end_s)
        return span

    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add_event(self, name: str, **attributes) -> None:
        """Annotate the current span; silently dropped when none is
        open (instrumentation points never need to check)."""
        span = self.current_span()
        if span is not None:
            span.add_event(name, **attributes)

    # -- export ---------------------------------------------------------

    def export(self) -> List[Span]:
        """Snapshot of finished spans, oldest first (buffer retained)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Remove and return all finished spans."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans

    def to_jsonl(self, path_or_handle) -> int:
        """Write finished spans as JSON Lines; returns the span count.

        Accepts a path or an open text handle.  One span per line,
        oldest first — the structured trace log.
        """
        spans = self.export()
        if hasattr(path_or_handle, "write"):
            for span in spans:
                path_or_handle.write(json.dumps(span.to_dict()) + "\n")
        else:
            with open(path_or_handle, "w") as handle:
                for span in spans:
                    handle.write(json.dumps(span.to_dict()) + "\n")
        return len(spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- internals ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - mis-nested exit
            stack.remove(span)

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)
            self.finished += 1


class _NullSpan:
    """Shared do-nothing span: the disabled tracer's answer to
    everything.  A single instance serves every instrumentation point;
    all methods are no-ops that keep the chaining contracts."""

    __slots__ = ()

    name = "null"
    trace_id = 0
    span_id = 0
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attributes: Dict[str, object] = {}
    events: List[dict] = []

    def set_attribute(self, key, value):
        return self

    def set_attributes(self, **attributes):
        return self

    def add_event(self, name, **attributes):
        return self

    def end(self, end_s=None):
        return None

    def to_dict(self):  # pragma: no cover - never exported
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every call is a constant-time no-op.

    No clock reads, no allocation beyond keyword packing at the call
    site, nothing retained — the default wiring everywhere, so the
    instrumentation's cost with tracing off stays within measurement
    noise (< 2% on the service load benchmark).
    """

    enabled = False
    capacity = 0
    dropped = 0
    started = 0
    finished = 0

    def span(self, name, parent=None, **attributes):
        """No-op; returns the shared inert span."""
        return _NULL_SPAN

    def start_span(self, name, parent=None, **attributes):
        """No-op; returns the shared inert span."""
        return _NULL_SPAN

    def record_span(self, name, start_s, end_s, parent=None, **attributes):
        """No-op; returns the shared inert span."""
        return _NULL_SPAN

    def current_span(self):
        """Always ``None``: there is never an active span."""
        return None

    def add_event(self, name, **attributes):
        """No-op; the event is discarded."""
        return None

    def export(self):
        """Always empty: nothing is ever recorded."""
        return []

    def drain(self):
        """Always empty: nothing is ever recorded."""
        return []

    def to_jsonl(self, path_or_handle):
        """Writes nothing; returns 0 spans written."""
        return 0

    def __len__(self):
        return 0


#: the shared disabled tracer every instrumented component defaults to
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: "Optional[Tracer | NullTracer]"):
    """``None`` -> :data:`NULL_TRACER`; anything else passes through."""
    return tracer if tracer is not None else NULL_TRACER


class OperatorTimes:
    """Thread-safe per-operator busy-time accumulator for fused passes.

    A fused plan runs many small operator invocations (one build+probe
    per partition, one reduceat per partition, ...) concurrently on the
    engine's workers.  Emitting one span per invocation would bury the
    trace in thousands of micro-spans; this accumulator instead sums
    busy time and call counts per operator name and emits **one
    retroactive span per operator** covering [first start, last end] —
    the per-operator view inside the fused pass that the staged path
    gets for free from its stage boundaries.

    ``busy_s`` can exceed the span's wall-clock duration when calls
    overlap on several workers; the span records both.
    """

    __slots__ = ("_lock", "_acc", "_clock")

    def __init__(self, clock=time.monotonic):
        self._lock = threading.Lock()
        # name -> [calls, busy_s, min_start, max_end]
        self._acc: Dict[str, list] = {}
        self._clock = clock

    def time(self, name: str) -> "_OperatorTimer":
        """Context manager accumulating one operator invocation."""
        return _OperatorTimer(self, name)

    def _record(self, name: str, start_s: float, end_s: float) -> None:
        with self._lock:
            entry = self._acc.get(name)
            if entry is None:
                self._acc[name] = [1, end_s - start_s, start_s, end_s]
            else:
                entry[0] += 1
                entry[1] += end_s - start_s
                if start_s < entry[2]:
                    entry[2] = start_s
                if end_s > entry[3]:
                    entry[3] = end_s

    def emit(self, tracer, parent: Optional[Span] = None) -> None:
        """Emit one retroactive span per accumulated operator."""
        with self._lock:
            snapshot = {k: list(v) for k, v in self._acc.items()}
        for name, (calls, busy_s, start_s, end_s) in sorted(
            snapshot.items()
        ):
            tracer.record_span(
                "op." + name,
                start_s,
                end_s,
                parent=parent,
                calls=calls,
                busy_s=busy_s,
            )

    def to_dict(self) -> Dict[str, dict]:
        """``{operator: {"calls": n, "busy_s": seconds}}`` snapshot."""
        with self._lock:
            return {
                name: {"calls": calls, "busy_s": busy_s}
                for name, (calls, busy_s, _, _) in sorted(self._acc.items())
            }


class _OperatorTimer:
    """One timed operator invocation (see :meth:`OperatorTimes.time`)."""

    __slots__ = ("_times", "_name", "_start")

    def __init__(self, times: OperatorTimes, name: str):
        self._times = times
        self._name = name

    def __enter__(self) -> "_OperatorTimer":
        self._start = self._times._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._times._record(self._name, self._start, self._times._clock())


def operator_times(tracer=None) -> OperatorTimes:
    """An :class:`OperatorTimes` on the tracer's clock (or monotonic).

    Always returns a live accumulator — the per-operator stats also
    feed :class:`~repro.plan.executor.QueryResult` when tracing is off;
    the cost is two clock reads per operator invocation.
    """
    clock = getattr(tracer, "_clock", None) if tracer is not None else None
    return OperatorTimes(clock=clock or time.monotonic)
