"""Observability: end-to-end tracing and metric export.

The measurement layer every performance claim in this repository is
judged with: a dependency-free span tracer
(:class:`~repro.obs.tracing.Tracer`) threaded through the service
tier, the execution engine and the circuit models, plus the export
surfaces (:mod:`repro.obs.export`) — Prometheus text-format
exposition and JSONL trace logs, rolled up into per-stage
critical-path summaries.

Quickstart::

    from repro.obs import Tracer
    from repro.service import PartitionService

    tracer = Tracer()
    with PartitionService(tracer=tracer) as service:
        service.partition(keys)
    tracer.to_jsonl("trace.jsonl")
    print(critical_path_table(tracer.export()).render())

See ``docs/OBSERVABILITY.md`` for the span model and the
``repro trace`` recipe.
"""

from repro.obs.export import (
    critical_path_table,
    interval_coverage,
    prometheus_from_snapshot,
    prometheus_from_spans,
    render_prometheus,
    stage_rollup,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "critical_path_table",
    "interval_coverage",
    "prometheus_from_snapshot",
    "prometheus_from_spans",
    "render_prometheus",
    "resolve_tracer",
    "stage_rollup",
]
