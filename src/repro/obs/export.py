"""Trace and metrics export: Prometheus text format, stage rollups.

Two export surfaces over the same observations:

* **Prometheus exposition** (text format 0.0.4) — the pull-style
  surface a production deployment scrapes.
  :func:`prometheus_from_snapshot` renders a
  :meth:`~repro.service.metrics.ServiceMetrics.to_dict` snapshot
  (counters, gauges, per-stage latency histograms);
  :func:`prometheus_from_spans` rolls finished spans up into
  per-stage duration histograms using the same log2 bucket ladder, so
  dashboards see one consistent bucketing for push- and pull-side
  latencies.
* **Per-stage critical-path summary** — :func:`stage_rollup` and
  :func:`critical_path_table` aggregate span durations by name, and
  :func:`interval_coverage` reports how much of the traced wall-clock
  window the spans actually cover (the ``repro trace`` acceptance
  check: un-instrumented time is invisible time).

Everything here consumes plain dicts and :class:`~repro.obs.tracing.Span`
objects — no service imports, so the module stays cycle-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "critical_path_table",
    "interval_coverage",
    "prometheus_from_snapshot",
    "prometheus_from_spans",
    "render_prometheus",
    "stage_rollup",
]

#: log2 bucket ladder shared with repro.service.metrics: upper bounds
#: 1 µs, 2 µs, ... 2^25 µs (~33.6 s), then +Inf — 27 buckets
_BUCKET_COUNT = 27
_BUCKET_BOUNDS_S = [(2.0 ** i) / 1e6 for i in range(_BUCKET_COUNT - 1)]


def _format_value(value: float) -> str:
    """Prometheus sample value: integers stay integral, floats use %g."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{float(value):g}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_pairs(labels: Optional[Dict[str, str]]) -> str:
    """Render extra ``key="value"`` label pairs (empty when None)."""
    if not labels:
        return ""
    return ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(labels.items())
    )


def _labelled(name: str, labels: Optional[Dict[str, str]]) -> str:
    """A sample name with optional constant labels attached."""
    pairs = _label_pairs(labels)
    return f"{name}{{{pairs}}}" if pairs else name


def _histogram_lines(
    name: str,
    label_key: str,
    label_value: str,
    cumulative: Sequence[int],
    total_sum: float,
    labels: Optional[Dict[str, str]] = None,
) -> List[str]:
    """One Prometheus histogram series (bucket/sum/count lines)."""
    label = f'{label_key}="{_escape_label(label_value)}"'
    extra = _label_pairs(labels)
    if extra:
        label = f"{extra},{label}"
    lines = []
    for bound, running in zip(_BUCKET_BOUNDS_S, cumulative):
        lines.append(
            f'{name}_bucket{{{label},le="{bound:g}"}} {running}'
        )
    count = cumulative[-1] if len(cumulative) else 0
    lines.append(f'{name}_bucket{{{label},le="+Inf"}} {count}')
    lines.append(f"{name}_sum{{{label}}} {_format_value(total_sum)}")
    lines.append(f"{name}_count{{{label}}} {count}")
    return lines


def _cumulate(buckets: Sequence[int]) -> List[int]:
    running, out = 0, []
    for bucket in buckets:
        running += int(bucket)
        out.append(running)
    return out


def prometheus_from_snapshot(
    snapshot: dict,
    prefix: str = "repro_service",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a :meth:`ServiceMetrics.to_dict` snapshot as Prometheus
    text-format exposition (counters, gauges, latency histograms).

    ``labels`` attaches constant labels to every sample — the cluster
    layer renders each shard's snapshot with ``{"shard": "<id>"}`` so
    one scrape page carries distinguishable per-shard series.
    """
    lines: List[str] = []
    for counter, value in sorted(snapshot.get("counters", {}).items()):
        name = f"{prefix}_{counter}_total"
        lines.append(f"# HELP {name} Service counter '{counter}'.")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{_labelled(name, labels)} {_format_value(value)}")
    for gauge, value in sorted(snapshot.get("gauges", {}).items()):
        name = f"{prefix}_{gauge}"
        lines.append(f"# HELP {name} Service gauge '{gauge}'.")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{_labelled(name, labels)} {_format_value(value)}")
    latency = snapshot.get("latency", {})
    if latency:
        name = f"{prefix}_latency_seconds"
        lines.append(
            f"# HELP {name} Per-stage request latency (log2 buckets)."
        )
        lines.append(f"# TYPE {name} histogram")
        for stage in sorted(latency):
            hist = latency[stage]
            cumulative = _cumulate(hist["log2_us_buckets"])
            lines.extend(
                _histogram_lines(
                    name,
                    "stage",
                    stage,
                    cumulative,
                    hist["mean_s"] * hist["count"],
                    labels=labels,
                )
            )
    optimizer = snapshot.get("optimizer") or {}
    decisions = optimizer.get("decisions") or {}
    if decisions:
        name = f"{prefix}_decisions_total"
        lines.append(
            f"# HELP {name} Optimizer decisions by backend/pad-strategy."
        )
        lines.append(f"# TYPE {name} counter")
        extra = _label_pairs(labels)
        for decision, value in sorted(decisions.items()):
            label = f'decision="{_escape_label(decision)}"'
            if extra:
                label = f"{extra},{label}"
            lines.append(f"{name}{{{label}}} {_format_value(value)}")
    rates = optimizer.get("rates") or {}
    if rates:
        name = f"{prefix}_optimizer_rate_tuples_per_second"
        lines.append(
            f"# HELP {name} Calibrated backend rates (observed EMA)."
        )
        lines.append(f"# TYPE {name} gauge")
        extra = _label_pairs(labels)
        for backend, value in sorted(rates.items()):
            label = f'backend="{_escape_label(backend)}"'
            if extra:
                label = f"{extra},{label}"
            lines.append(f"{name}{{{label}}} {_format_value(value)}")
    throughput = snapshot.get("throughput_rps")
    if throughput is not None:
        name = f"{prefix}_throughput_rps"
        lines.append(
            f"# HELP {name} Completed requests per second since start."
        )
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{_labelled(name, labels)} {_format_value(throughput)}"
        )
    return "\n".join(lines) + "\n"


def _bucket_index(seconds: float) -> int:
    micros = max(0.0, seconds) * 1e6
    index, bound = 0, 1.0
    while micros > bound and index < _BUCKET_COUNT - 1:
        bound *= 2.0
        index += 1
    return index


def prometheus_from_spans(
    spans: Iterable,
    prefix: str = "repro_span",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Roll finished spans into per-name Prometheus duration histograms.

    Every distinct span name becomes one ``{span="<name>"}`` series of
    ``<prefix>_duration_seconds``, bucketed on the same log2 ladder as
    the service latency histograms.  Spans carrying a ``bytes``
    attribute (the storage engine's ``spill_chunk`` / ``spill_flush`` /
    ``spill_merge`` spans do) additionally roll up into
    ``<prefix>_bytes_total`` counters per span name, so I/O volume is
    scrapeable next to the latencies it explains.
    """
    buckets: Dict[str, List[int]] = {}
    sums: Dict[str, float] = {}
    byte_totals: Dict[str, int] = {}
    for span in spans:
        row = buckets.get(span.name)
        if row is None:
            row = buckets[span.name] = [0] * _BUCKET_COUNT
            sums[span.name] = 0.0
        row[_bucket_index(span.duration_s)] += 1
        sums[span.name] += span.duration_s
        span_bytes = getattr(span, "attributes", {}).get("bytes")
        if isinstance(span_bytes, (int, float)) and not isinstance(
            span_bytes, bool
        ):
            byte_totals[span.name] = byte_totals.get(span.name, 0) + int(
                span_bytes
            )
    name = f"{prefix}_duration_seconds"
    lines = [
        f"# HELP {name} Span durations by span name (log2 buckets).",
        f"# TYPE {name} histogram",
    ]
    for span_name in sorted(buckets):
        lines.extend(
            _histogram_lines(
                name,
                "span",
                span_name,
                _cumulate(buckets[span_name]),
                sums[span_name],
                labels=labels,
            )
        )
    if byte_totals:
        bytes_name = f"{prefix}_bytes_total"
        lines.append(
            f"# HELP {bytes_name} Bytes attributed to spans, by span name."
        )
        lines.append(f"# TYPE {bytes_name} counter")
        extra = _label_pairs(labels)
        for span_name in sorted(byte_totals):
            label = f'span="{_escape_label(span_name)}"'
            if extra:
                label = f"{extra},{label}"
            lines.append(
                f"{bytes_name}{{{label}}} {byte_totals[span_name]}"
            )
    return "\n".join(lines) + "\n"


def render_prometheus(
    snapshot: Optional[dict] = None,
    spans: Optional[Iterable] = None,
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """The combined exposition page: metrics first, span rollups after."""
    parts = []
    if snapshot is not None:
        parts.append(prometheus_from_snapshot(snapshot, labels=labels))
    if spans is not None:
        parts.append(prometheus_from_spans(spans, labels=labels))
    return "".join(parts)


# ---------------------------------------------------------------------------
# Stage rollups and coverage
# ---------------------------------------------------------------------------


def stage_rollup(spans: Iterable) -> Dict[str, dict]:
    """Aggregate span durations by name (exact quantiles, small sets).

    Returns ``{name: {count, total_s, mean_s, p50_s, p95_s, max_s}}``.
    """
    durations: Dict[str, List[float]] = {}
    for span in spans:
        durations.setdefault(span.name, []).append(span.duration_s)
    rollup: Dict[str, dict] = {}
    for name, values in durations.items():
        values.sort()
        count = len(values)
        rollup[name] = {
            "count": count,
            "total_s": sum(values),
            "mean_s": sum(values) / count,
            "p50_s": values[int(0.50 * (count - 1))],
            "p95_s": values[int(0.95 * (count - 1))],
            "max_s": values[-1],
        }
    return rollup


def interval_coverage(
    spans: Iterable,
    window: Optional[Tuple[float, float]] = None,
) -> Tuple[float, float, float]:
    """How much of the wall-clock window do the spans cover?

    Computes the union of all ``[start_s, end_s]`` intervals, clipped
    to ``window`` (default: first span start to last span end).
    Returns ``(covered_s, wall_s, fraction)`` — the ``repro trace``
    acceptance metric: time outside every span is time the trace
    cannot explain.
    """
    intervals = sorted(
        (span.start_s, span.end_s)
        for span in spans
        if span.end_s is not None
    )
    if not intervals:
        return 0.0, 0.0, 0.0
    if window is None:
        window = (
            intervals[0][0],
            max(end for _, end in intervals),
        )
    lo, hi = window
    wall = max(0.0, hi - lo)
    covered = 0.0
    cursor = lo
    for start, end in intervals:
        start, end = max(start, lo), min(end, hi)
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    fraction = covered / wall if wall > 0 else 0.0
    return covered, wall, fraction


def critical_path_table(spans: Sequence, title: str = "repro trace"):
    """Per-stage critical-path summary as an
    :class:`~repro.bench.reporting.ExperimentTable`.

    One row per span name, sorted by total time spent (the critical
    path reads top-down); the note carries the coverage fraction.
    """
    from repro.bench.reporting import ExperimentTable

    rollup = stage_rollup(spans)
    covered, wall, fraction = interval_coverage(spans)
    rows = [
        [
            name,
            stats["count"],
            stats["total_s"],
            100.0 * stats["total_s"] / wall if wall else 0.0,
            1e3 * stats["mean_s"],
            1e3 * stats["p95_s"],
            1e3 * stats["max_s"],
        ]
        for name, stats in sorted(
            rollup.items(), key=lambda kv: -kv[1]["total_s"]
        )
    ]
    return ExperimentTable(
        experiment_id=title,
        title="per-stage time attribution (critical path first)",
        headers=[
            "stage", "n", "total s", "share %", "mean ms", "p95 ms",
            "max ms",
        ],
        rows=rows,
        note=(
            f"spans cover {100.0 * fraction:.1f}% of the "
            f"{wall:.3f}s traced window ({len(spans)} spans)"
        ),
    )
