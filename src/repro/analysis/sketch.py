"""Streaming cardinality and skew sketches for the ingest pass.

The out-of-core engine (:mod:`repro.storage`) sees a relation exactly
once while writing it to disk — the same constraint Kara et al.'s
follow-on HyperLogLog sketch accelerator exploits: a one-pass, tiny-
state summary computed *while the data streams by* is enough to size
every downstream stage.  Two sketches ride the ingest pass:

* :class:`HyperLogLogSketch` — the classic HLL cardinality estimator
  (Flajolet et al., 2007) over the murmur-finalized key stream, with
  the small-range linear-counting correction.  The partitioner's own
  hash (:func:`~repro.core.hashing.murmur3_finalizer`) doubles as the
  sketch hash, so the estimate reflects exactly the key entropy the
  partition function will see.
* :class:`HeavyHitterSketch` — a Misra–Gries summary of the most
  frequent keys.  A single key owning a large share of the input is
  the one thing no hash partitioner can balance away (Section 3.2 of
  the paper: all repeats of a key land in one partition), so the
  heavy-hitter share bounds the largest partition from below.

:class:`StreamSketch` bundles both plus the exact tuple count; it is
JSON-serialisable (``to_dict`` / ``from_dict``) so the
:class:`~repro.storage.store.RelationStore` manifest can carry it, and
:meth:`StreamSketch.partition_plan` turns it into the pre-sizing and
skew warnings the spill partitioner consumes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.core.hashing import murmur3_finalizer
from repro.errors import ConfigurationError

__all__ = [
    "HeavyHitterSketch",
    "HyperLogLogSketch",
    "PartitionPlan",
    "StreamSketch",
]


class HyperLogLogSketch:
    """HyperLogLog cardinality estimator over uint32 key batches.

    Args:
        precision: number of register-index bits ``p``; ``2**p``
            one-byte registers (default 12 -> 4 KiB, ~1.6% error).

    The update is fully vectorised: one murmur pass, one shift for the
    register index, one count-leading-zeros on the remaining bits, one
    ``maximum.at`` scatter.  Estimation applies the standard bias
    correction plus linear counting below the small-range threshold.
    """

    def __init__(self, precision: int = 12):
        if not 4 <= precision <= 16:
            raise ConfigurationError(
                f"precision must be in [4, 16], got {precision}"
            )
        self.precision = precision
        self.num_registers = 1 << precision
        self.registers = np.zeros(self.num_registers, dtype=np.uint8)

    def add(self, keys: np.ndarray) -> "HyperLogLogSketch":
        """Absorb a batch of uint32 keys; returns self for chaining."""
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        if keys.size == 0:
            return self
        hashed = murmur3_finalizer(keys)
        index = hashed >> np.uint32(32 - self.precision)
        # rank = position of the first set bit in the low (32 - p) bits,
        # counted from the MSB side, 1-based; an all-zero suffix gets
        # the maximum rank (32 - p + 1).
        suffix_bits = 32 - self.precision
        suffix = hashed & np.uint32((1 << suffix_bits) - 1)
        # bit_length via log2 on the nonzero lanes (float64 is exact
        # for values < 2**32)
        rank = np.full(suffix.shape, suffix_bits + 1, dtype=np.uint8)
        nonzero = suffix != 0
        if nonzero.any():
            lengths = np.floor(
                np.log2(suffix[nonzero].astype(np.float64))
            ).astype(np.int64) + 1
            rank[nonzero] = (suffix_bits - lengths + 1).astype(np.uint8)
        np.maximum.at(self.registers, index.astype(np.int64), rank)
        return self

    def merge(self, other: "HyperLogLogSketch") -> "HyperLogLogSketch":
        """Register-wise max merge (the HLL union); returns self."""
        if other.precision != self.precision:
            raise ConfigurationError(
                "cannot merge sketches of different precision "
                f"({self.precision} vs {other.precision})"
            )
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    #: Flajolet et al.'s bias constants for small register counts; the
    #: asymptotic 0.7213/(1 + 1.079/m) formula only holds for m >= 128
    #: and overestimates by several percent at m = 16/32/64.
    _SMALL_M_ALPHA = {16: 0.673, 32: 0.697, 64: 0.709}

    def cardinality(self) -> float:
        """Estimated number of distinct keys seen."""
        m = float(self.num_registers)
        alpha = self._SMALL_M_ALPHA.get(
            self.num_registers, 0.7213 / (1.0 + 1.079 / m)
        )
        estimate = alpha * m * m / float(
            np.sum(np.ldexp(1.0, -self.registers.astype(np.int64)))
        )
        if estimate <= 2.5 * m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                return m * float(np.log(m / zeros))
        return estimate

    def to_dict(self) -> dict:
        """JSON-native form (registers run-length friendly as a list)."""
        return {
            "precision": self.precision,
            "registers": self.registers.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HyperLogLogSketch":
        sketch = cls(precision=int(data["precision"]))
        registers = np.asarray(data["registers"], dtype=np.uint8)
        if registers.shape[0] != sketch.num_registers:
            raise ConfigurationError("register count does not match precision")
        sketch.registers = registers
        return sketch


class HeavyHitterSketch:
    """Misra–Gries top-k summary over uint32 key batches.

    Guarantees: any key with true frequency above ``n / capacity`` is
    retained, and each retained counter under-counts by at most
    ``n / capacity`` — enough to flag partition-breaking skew without
    storing the key domain.  Batches are pre-aggregated with
    ``np.unique`` so the per-tuple cost stays vectorised.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.counters: Dict[int, int] = {}

    def add(self, keys: np.ndarray) -> "HeavyHitterSketch":
        """Absorb a batch of keys; returns self for chaining."""
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        if keys.size == 0:
            return self
        unique, counts = np.unique(keys, return_counts=True)
        counters = self.counters
        for key, count in zip(unique.tolist(), counts.tolist()):
            if key in counters:
                counters[key] += count
            elif len(counters) < self.capacity:
                counters[key] = count
            else:
                # Misra–Gries decrement step, batched: shedding the
                # minimum count from every counter preserves the
                # frequency-error bound.
                shed = min(count, min(counters.values()))
                counters = {
                    k: v - shed for k, v in counters.items() if v > shed
                }
                if count > shed:
                    counters[key] = count - shed
                self.counters = counters
        return self

    def merge(self, other: "HeavyHitterSketch") -> "HeavyHitterSketch":
        """Combine another Misra–Gries summary into this one.

        Counter sums are taken first, then the summary is shrunk back
        to ``capacity`` by shedding the ``(capacity + 1)``-th largest
        count from every counter — the standard mergeable-summary step,
        which keeps the combined under-count bounded by the sum of the
        two inputs' bounds (Agarwal et al., "Mergeable Summaries").
        Returns self.
        """
        if other.capacity != self.capacity:
            raise ConfigurationError(
                "cannot merge sketches of different capacity "
                f"({self.capacity} vs {other.capacity})"
            )
        combined = dict(self.counters)
        for key, count in other.counters.items():
            combined[key] = combined.get(key, 0) + count
        if len(combined) > self.capacity:
            ranked = sorted(combined.values(), reverse=True)
            shed = ranked[self.capacity]
            combined = {
                k: v - shed for k, v in combined.items() if v > shed
            }
        self.counters = combined
        return self

    def top(self, k: int = 8) -> List[tuple]:
        """The ``k`` largest (key, lower-bound count) pairs."""
        ranked = sorted(
            self.counters.items(), key=lambda kv: -kv[1]
        )
        return ranked[:k]

    def to_dict(self) -> dict:
        """JSON-native form (keys stringified for JSON objects)."""
        return {
            "capacity": self.capacity,
            "counters": {str(k): v for k, v in self.counters.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HeavyHitterSketch":
        sketch = cls(capacity=int(data["capacity"]))
        sketch.counters = {
            int(k): int(v) for k, v in data["counters"].items()
        }
        return sketch


@dataclasses.dataclass
class PartitionPlan:
    """What the sketches predict about a partitioning run.

    Attributes:
        num_tuples: exact tuples seen by the sketch.
        distinct_keys: HLL cardinality estimate.
        expected_tuples_per_partition: pre-sizing target for spill
            partition files — the fair share inflated by the
            heavy-hitter share (a heavy key concentrates its whole
            count in one partition).
        max_key_share: largest single-key input share (lower bound).
        skewed: True when the heavy-hitter share alone already
            overflows the fair share by the warning factor.
    """

    num_tuples: int
    distinct_keys: int
    expected_tuples_per_partition: int
    max_key_share: float
    skewed: bool


class StreamSketch:
    """The ingest-pass bundle: exact count + HLL + heavy hitters."""

    def __init__(
        self,
        precision: int = 12,
        heavy_hitter_capacity: int = 64,
    ):
        self.hll = HyperLogLogSketch(precision=precision)
        self.heavy = HeavyHitterSketch(capacity=heavy_hitter_capacity)
        self.num_tuples = 0

    def add(self, keys: np.ndarray) -> "StreamSketch":
        """Absorb one chunk of keys; returns self for chaining."""
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        self.num_tuples += int(keys.shape[0])
        self.hll.add(keys)
        self.heavy.add(keys)
        return self

    def merge(self, other: "StreamSketch") -> "StreamSketch":
        """Union with another ingest bundle; returns self.

        Raises :class:`~repro.errors.ConfigurationError` when the HLL
        precisions or heavy-hitter capacities differ — the register
        and counter merges are only sound between identically-shaped
        sketches.  Shapes are checked up front so a mismatch leaves
        this bundle untouched rather than half-merged.
        """
        if other.heavy.capacity != self.heavy.capacity:
            raise ConfigurationError(
                "cannot merge sketches of different capacity "
                f"({self.heavy.capacity} vs {other.heavy.capacity})"
            )
        self.hll.merge(other.hll)
        self.heavy.merge(other.heavy)
        self.num_tuples += other.num_tuples
        return self

    def cardinality(self) -> float:
        """HLL estimate of the distinct keys seen so far."""
        return self.hll.cardinality()

    def max_key_share(self) -> float:
        """Lower-bound input share of the most frequent key."""
        if self.num_tuples == 0 or not self.heavy.counters:
            return 0.0
        return max(self.heavy.counters.values()) / self.num_tuples

    def partition_plan(
        self, num_partitions: int, skew_factor: float = 2.0
    ) -> PartitionPlan:
        """Pre-sizing + skew verdict for a ``num_partitions`` fan-out.

        The expected largest partition is at least the fair share and
        at least the heavy-hitter count (all repeats of one key share a
        partition); ``skewed`` flags inputs where the heavy-hitter mass
        alone exceeds ``skew_factor`` fair shares.
        """
        if num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        fair = -(-self.num_tuples // num_partitions) if self.num_tuples else 0
        share = self.max_key_share()
        heavy_tuples = int(share * self.num_tuples)
        expected = max(fair, heavy_tuples)
        return PartitionPlan(
            num_tuples=self.num_tuples,
            distinct_keys=int(round(self.cardinality())),
            expected_tuples_per_partition=expected,
            max_key_share=share,
            skewed=heavy_tuples > skew_factor * max(1, fair),
        )

    def to_dict(self) -> dict:
        """JSON-native bundle for the store manifest."""
        return {
            "num_tuples": self.num_tuples,
            "hll": self.hll.to_dict(),
            "heavy_hitters": self.heavy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["StreamSketch"]:
        """Rebuild from a manifest entry; None passes through."""
        if data is None:
            return None
        sketch = cls.__new__(cls)
        sketch.num_tuples = int(data["num_tuples"])
        sketch.hll = HyperLogLogSketch.from_dict(data["hll"])
        sketch.heavy = HeavyHitterSketch.from_dict(data["heavy_hitters"])
        return sketch
