"""Partition-size histograms and CDFs (Figure 3).

Figure 3 plots, for each key distribution, the cumulative distribution
function of partition sizes: x = tuples per partition, y = number of
partitions with at most that many tuples.  A balanced partitioning is a
near-vertical step at ``n / fanout``; radix partitioning on grid-family
keys produces the degenerate curves of Figure 3a (most partitions
empty, a few enormous).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.hashing import partition_of
from repro.errors import ConfigurationError


def partition_histogram(
    keys: np.ndarray, num_partitions: int, use_hash: bool
) -> np.ndarray:
    """Tuples per partition for a key column under radix or hash."""
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    if keys.size == 0:
        raise ConfigurationError("empty key column")
    parts = np.asarray(partition_of(keys, num_partitions, use_hash))
    return np.bincount(parts.astype(np.int64), minlength=num_partitions)


def partition_histogram_streamed(
    distribution,
    n: int,
    num_partitions: int,
    use_hash: bool,
    seed: int = 0,
    chunk_size: int = 1 << 22,
) -> np.ndarray:
    """Partition-size histogram of a paper-scale relation, streamed.

    Generates the key column chunk by chunk (never holding the whole
    relation), so the *true* full-scale partition shares — which decide
    the build+probe cache behaviour in Figure 12 — are available even
    when the joins themselves run on scaled-down samples.
    """
    from repro.workloads.distributions import iter_key_chunks

    counts = np.zeros(num_partitions, dtype=np.int64)
    for keys in iter_key_chunks(distribution, n, chunk_size, seed):
        parts = np.asarray(partition_of(keys, num_partitions, use_hash))
        counts += np.bincount(parts.astype(np.int64), minlength=num_partitions)
    return counts


def partition_cdf(
    counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """CDF over partition sizes, Figure 3 axes.

    Returns ``(sizes, num_partitions_leq)``: for each distinct
    partition size (ascending), the number of partitions whose size is
    <= that value.  Plot as a step function to reproduce Figure 3.
    """
    counts = np.asarray(counts)
    sizes = np.sort(counts)
    distinct = np.unique(sizes)
    cumulative = np.searchsorted(sizes, distinct, side="right")
    return distinct, cumulative
