"""Partition-quality analysis (Figure 3, Section 3.2).

Tools to quantify how balanced a partitioning came out: cumulative
distribution functions over partition sizes (the Figure 3 plots),
scalar balance metrics used by tests and benchmarks, and the one-pass
streaming sketches (:mod:`repro.analysis.sketch`) the out-of-core
storage engine computes at ingest time.
"""

from repro.analysis.histogram import (
    partition_cdf,
    partition_histogram,
    partition_histogram_streamed,
)
from repro.analysis.balance import BalanceReport, balance_report
from repro.analysis.sketch import (
    HeavyHitterSketch,
    HyperLogLogSketch,
    PartitionPlan,
    StreamSketch,
)
from repro.analysis.verify import (
    VerificationReport,
    verify_join_pairs,
    verify_partitioning,
)

__all__ = [
    "partition_cdf",
    "partition_histogram",
    "partition_histogram_streamed",
    "BalanceReport",
    "balance_report",
    "HeavyHitterSketch",
    "HyperLogLogSketch",
    "PartitionPlan",
    "StreamSketch",
    "VerificationReport",
    "verify_partitioning",
    "verify_join_pairs",
]
