"""Scalar balance metrics over a partitioning.

Used to turn the Figure 3 visual ("hash is balanced, radix is not on
grid keys") into assertable numbers: the max/mean partition-size ratio,
the fraction of empty partitions, and the normalised chi-square
statistic against the uniform expectation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class BalanceReport:
    """Summary statistics of a partition-size histogram."""

    num_partitions: int
    total_tuples: int
    max_tuples: int
    mean_tuples: float
    empty_partitions: int
    max_over_mean: float
    chi_square_normalised: float

    @property
    def is_balanced(self) -> bool:
        """Heuristic: no partition more than 2x the fair share and
        fewer than 1% empty partitions."""
        return (
            self.max_over_mean <= 2.0
            and self.empty_partitions <= 0.01 * self.num_partitions
        )


def balance_report(counts: np.ndarray) -> BalanceReport:
    """Compute balance statistics for a partition-size histogram."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        raise ConfigurationError("empty histogram")
    total = int(counts.sum())
    mean = total / counts.size
    if mean > 0:
        chi_square = float(((counts - mean) ** 2 / mean).sum() / counts.size)
    else:
        chi_square = 0.0
    return BalanceReport(
        num_partitions=int(counts.size),
        total_tuples=total,
        max_tuples=int(counts.max()),
        mean_tuples=mean,
        empty_partitions=int((counts == 0).sum()),
        max_over_mean=float(counts.max() / mean) if mean else float("inf"),
        chi_square_normalised=chi_square,
    )
