"""Programmatic verification of partitioning and join outputs.

The reproduction's tests assert a handful of load-bearing invariants;
this module packages them as a library feature so downstream users can
verify *their* runs (custom configs, their own data) the same way:

* a partitioning is a **permutation**: every input tuple appears in
  exactly one partition, nothing invented;
* it is **correct**: every tuple sits in the partition its key's
  partition function selects;
* it is **layout-consistent**: per-partition line counts cover the
  tuples and respect PAD capacities;
* a join result is **sound**: every reported pair shares its key.

Each check returns a :class:`VerificationReport`; ``raise_on_failure``
turns violations into exceptions for pipeline use.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core.hashing import partition_of
from repro.core.modes import OutputMode
from repro.core.partitioner import PartitionedOutput
from repro.errors import ReproError


class VerificationError(ReproError):
    """A verified invariant does not hold."""


@dataclasses.dataclass
class VerificationReport:
    """Outcome of one verification run."""

    checks_run: int
    failures: List[str]

    @property
    def ok(self) -> bool:
        """True when every check held."""
        return not self.failures

    def raise_on_failure(self) -> "VerificationReport":
        """Raise :class:`VerificationError` when any check failed."""
        if self.failures:
            raise VerificationError(
                "; ".join(self.failures[:5])
                + (f" (+{len(self.failures) - 5} more)"
                   if len(self.failures) > 5 else "")
            )
        return self


def verify_partitioning(
    output: PartitionedOutput,
    keys: np.ndarray,
    payloads: Optional[np.ndarray] = None,
) -> VerificationReport:
    """Check a partitioning against its input relation.

    Verifies the permutation, correct-partition and layout invariants.
    ``payloads`` defaults to positions (VRID semantics).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    if payloads is None:
        payloads = np.arange(keys.shape[0], dtype=np.uint32)
    failures: List[str] = []
    checks = 0

    # permutation: payload multiset matches
    checks += 1
    out_payloads = (
        np.concatenate(output.partition_payloads)
        if output.partition_payloads
        else np.empty(0, dtype=np.uint32)
    )
    if sorted(map(int, out_payloads)) != sorted(map(int, payloads)):
        failures.append(
            f"not a permutation: {out_payloads.shape[0]} tuples out vs "
            f"{payloads.shape[0]} in"
        )

    # correct partition per tuple
    checks += 1
    config = output.config
    for p, p_keys in enumerate(output.partition_keys):
        if p_keys.size == 0:
            continue
        computed = np.asarray(
            partition_of(p_keys, config.num_partitions, config.uses_hash)
        )
        wrong = int((computed != p).sum())
        if wrong:
            failures.append(
                f"partition {p}: {wrong} tuples belong elsewhere"
            )

    # counts/lines consistency
    checks += 1
    per_line = config.tuples_per_line
    for p in range(output.num_partitions):
        count = int(output.counts[p])
        lines = int(output.lines_per_partition[p])
        min_lines = -(-count // per_line)
        if output.produced_by.startswith("fpga") and not (
            min_lines <= lines <= min_lines + config.num_lanes
        ):
            failures.append(
                f"partition {p}: {lines} lines for {count} tuples "
                f"(expected {min_lines}..{min_lines + config.num_lanes})"
            )

    # PAD capacity respected
    if config.output_mode is OutputMode.PAD and output.produced_by.startswith(
        "fpga"
    ):
        checks += 1
        capacity_lines = config.partition_capacity(keys.shape[0]) // per_line
        over = np.nonzero(output.lines_per_partition > capacity_lines)[0]
        if over.size:
            failures.append(
                f"PAD capacity exceeded in partitions {list(over[:5])}"
            )

    return VerificationReport(checks_run=checks, failures=failures)


def verify_join_pairs(
    r_keys: np.ndarray,
    s_keys: np.ndarray,
    r_match_idx: np.ndarray,
    s_match_idx: np.ndarray,
    expected_matches: Optional[int] = None,
) -> VerificationReport:
    """Check join soundness (and optionally completeness).

    Soundness: every reported (r, s) index pair shares its key.
    Completeness: the pair count equals ``expected_matches`` when given
    (compute it with a reference join for small inputs).
    """
    failures: List[str] = []
    checks = 1
    mismatched = int(
        (r_keys[r_match_idx] != s_keys[s_match_idx]).sum()
    )
    if mismatched:
        failures.append(f"{mismatched} reported pairs do not share a key")
    if expected_matches is not None:
        checks += 1
        if int(r_match_idx.shape[0]) != expected_matches:
            failures.append(
                f"{r_match_idx.shape[0]} pairs reported, "
                f"{expected_matches} expected"
            )
    return VerificationReport(checks_run=checks, failures=failures)
