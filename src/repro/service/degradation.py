"""Backend health: faults, saturation, circuit breaking, failover.

The FPGA in this reproduction is simulated, so its failure modes are
simulated too — but the *control plane* around them is the real thing
a serving tier needs:

* :class:`FaultInjector` — deterministic fault injection for tests and
  load experiments (fail the next N calls, or a seeded failure rate).
* :class:`TokenBucket` — a saturation model: the accelerator absorbs
  tuples at a finite rate with a bounded burst; work beyond that is
  *saturation*, and the policy routes it to the CPU instead of queueing
  it on a busy device (the paper's partitioner only wins while it is
  fed at line rate — overfeeding it just moves the queue).
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  faults the FPGA path opens for ``cooldown_s``; while open, requests
  go straight to the CPU backend with no retry latency.  A half-open
  probe closes it again after a success.
* :class:`DegradationPolicy` — bundles the three into the single
  question the dispatcher asks: *may this batch use the FPGA right
  now, and if it failed, what next?*

Degraded work is never silent: every failover marks the response
``degraded=True`` and bumps the ``degraded`` counter in
:class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Optional

from repro.errors import ReproError


class BackendFault(ReproError):
    """A (simulated) backend failed to execute a partitioning call."""


class FaultInjector:
    """Deterministic, thread-safe fault injection for the FPGA path.

    Three knobs that compose:

    * :meth:`fail_next` — fail exactly the next ``n`` calls (tests,
      targeted chaos);
    * :meth:`fail_at` — fail exactly the ``n``-th future call, letting
      the first ``n - 1`` through (crash-recovery tests aim a fault at
      one specific checkpoint deep inside a run);
    * ``fail_rate`` — seeded Bernoulli failure per call (load tests).
    """

    def __init__(self, fail_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= fail_rate <= 1.0:
            raise ReproError(
                f"fail_rate must be in [0, 1], got {fail_rate}"
            )
        self.fail_rate = fail_rate
        self._rng = random.Random(seed)
        self._fail_next = 0
        self._countdown: Optional[int] = None
        self._lock = threading.Lock()
        self.injected = 0

    def fail_next(self, calls: int = 1) -> None:
        """Make the next ``calls`` invocations raise."""
        with self._lock:
            self._fail_next += calls

    def fail_at(self, call: int) -> None:
        """Make exactly the ``call``-th future :meth:`check` raise
        (1-based); earlier and later calls pass.  Replaces any armed
        :meth:`fail_at` countdown."""
        if call < 1:
            raise ReproError(f"fail_at call must be >= 1, got {call}")
        with self._lock:
            self._countdown = call

    def check(self) -> None:
        """Raise :class:`BackendFault` if a fault is due; else no-op."""
        with self._lock:
            if self._countdown is not None:
                self._countdown -= 1
                if self._countdown == 0:
                    self._countdown = None
                    self.injected += 1
                    raise BackendFault("injected fault (fail_at)")
            if self._fail_next > 0:
                self._fail_next -= 1
                self.injected += 1
                raise BackendFault("injected fault (fail_next)")
            if self.fail_rate > 0.0 and self._rng.random() < self.fail_rate:
                self.injected += 1
                raise BackendFault("injected fault (fail_rate)")


class TokenBucket:
    """Token-bucket saturation model for the simulated accelerator.

    Tokens are tuples of absorb capacity, replenished at
    ``tuples_per_second`` up to ``burst_tuples``.  A batch is admitted
    iff the bucket currently holds its whole size — a saturated FPGA
    answers *now* with "no", it does not queue.
    """

    def __init__(
        self,
        tuples_per_second: float,
        burst_tuples: Optional[float] = None,
        clock=time.monotonic,
    ):
        if tuples_per_second <= 0:
            raise ReproError(
                f"tuples_per_second must be positive, got {tuples_per_second}"
            )
        self.rate = float(tuples_per_second)
        # `is not None`, not truthiness: an explicit burst_tuples=0 is a
        # configuration error and must raise, not silently become `rate`
        self.burst = float(
            burst_tuples if burst_tuples is not None else self.rate
        )
        if self.burst <= 0:
            raise ReproError(f"burst_tuples must be positive, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tuples: int) -> bool:
        """Take ``tuples`` tokens if available; False means saturated."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if tuples <= self._tokens:
                self._tokens -= tuples
                return True
            return False


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    States: *closed* (normal), *open* (all FPGA work refused until
    ``cooldown_s`` elapses), *half-open* (exactly one probe allowed;
    success closes, failure re-opens).  The single probe is *claimed*
    inside :meth:`allow` under the lock — concurrent callers racing
    into the half-open window get one True and the rest False, so a
    recovering backend sees one request, not a thundering herd.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 0.25,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ReproError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_claimed = False
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown_s:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May the FPGA path run right now?

        Half-open admits exactly one caller: the first ``allow()`` in
        the half-open window claims the probe under the lock; everyone
        else is refused until the probe's outcome is recorded.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.OPEN:
                return False
            if state == self.HALF_OPEN:
                if self._probe_claimed:
                    return False
                self._probe_claimed = True
            return True

    def release_probe(self) -> None:
        """Return a half-open probe claimed by :meth:`allow` but never
        executed (e.g. the policy refused the work on saturation before
        the FPGA call) so the next caller can claim it instead."""
        with self._lock:
            self._probe_claimed = False

    def record_success(self) -> None:
        """Reset the failure streak and close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_claimed = False

    def record_failure(self) -> None:
        """Count a failure; open the breaker at the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._consecutive_failures >= self.failure_threshold
                or self._opened_at is not None
            ):
                # threshold reached, or a half-open probe failed; the
                # new cooldown window gets a fresh single probe
                self._opened_at = self._clock()
                self._probe_claimed = False


class DegradationPolicy:
    """The dispatcher's one-stop backend-health decision point.

    Args:
        saturation: optional :class:`TokenBucket`; None means the FPGA
            is never saturation-limited.
        fault_injector: optional :class:`FaultInjector` consulted on
            every FPGA invocation.
        breaker: circuit breaker (a default one is built if omitted).
    """

    def __init__(
        self,
        saturation: Optional[TokenBucket] = None,
        fault_injector: Optional[FaultInjector] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.saturation = saturation
        self.fault_injector = fault_injector
        self.breaker = breaker or CircuitBreaker()

    def admit_fpga(self, tuples: int) -> Optional[str]:
        """None if the FPGA may run this work, else the refusal reason
        (``"breaker-open"`` / ``"saturated"`` / ``"oversized"``) for
        metrics and logs.  A batch larger than the bucket's burst can
        *never* be admitted no matter how long the bucket refills, so
        it gets the distinct ``"oversized"`` answer instead of an
        eternally misleading ``"saturated"``."""
        if not self.breaker.allow():
            return "breaker-open"
        if self.saturation is not None:
            refusal = None
            if tuples > self.saturation.burst:
                refusal = "oversized"
            elif not self.saturation.try_acquire(tuples):
                refusal = "saturated"
            if refusal is not None:
                # allow() may have claimed the single half-open probe;
                # this work never reaches the FPGA, so hand it back
                self.breaker.release_probe()
                return refusal
        return None

    def before_fpga_call(self) -> None:
        """Fault-injection hook; raises :class:`BackendFault` on fault."""
        if self.fault_injector is not None:
            self.fault_injector.check()

    def record_outcome(self, success: bool) -> None:
        """Feed the breaker with the call result."""
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
