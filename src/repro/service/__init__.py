"""The partitioning service layer — a request-serving tier.

The library's partitioners are one-shot calls; this package turns them
into a servable system in the shape of an inference server:

* :class:`~repro.service.service.PartitionService` — the façade.
  Accepts :class:`~repro.service.service.PartitionRequest`\\ s (relation
  + config + deadline + priority) from many concurrent clients and
  resolves :class:`~repro.service.service.PartitionTicket`\\ s.
* :class:`~repro.service.queue.AdmissionQueue` — bounded, prioritised,
  with backpressure: a full queue rejects with ``retry_after`` instead
  of growing without bound.
* :class:`~repro.service.scheduler.BatchingScheduler` — coalesces
  compatible small requests into one
  :meth:`~repro.core.partitioner.FpgaPartitioner.partition_many`
  kernel invocation and routes oversized requests through the
  morsel-driven :mod:`repro.exec` engine.
* :mod:`~repro.service.degradation` — fault injection, a token-bucket
  saturation model and a circuit breaker; saturated or faulted FPGA
  work transparently fails over to the CPU (SWWC) backend.
* :class:`~repro.service.metrics.ServiceMetrics` — queue depth,
  admit/reject/timeout/degrade counters, per-stage latency histograms
  and throughput, exportable as JSON or an
  :class:`~repro.bench.reporting.ExperimentTable`.

See ``docs/SERVICE.md`` for the architecture and knob reference.
"""

from repro.service.degradation import (
    BackendFault,
    CircuitBreaker,
    DegradationPolicy,
    FaultInjector,
    TokenBucket,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.queue import AdmissionQueue, QueueFullError
from repro.service.scheduler import Batch, BatchingScheduler, request_signature
from repro.service.service import (
    PartitionRequest,
    PartitionResponse,
    PartitionService,
    PartitionTicket,
    Priority,
    RequestStatus,
    ServiceDrainingError,
)

__all__ = [
    "AdmissionQueue",
    "BackendFault",
    "Batch",
    "BatchingScheduler",
    "CircuitBreaker",
    "DegradationPolicy",
    "FaultInjector",
    "LatencyHistogram",
    "PartitionRequest",
    "PartitionResponse",
    "PartitionService",
    "PartitionTicket",
    "Priority",
    "QueueFullError",
    "RequestStatus",
    "ServiceDrainingError",
    "ServiceMetrics",
    "TokenBucket",
    "request_signature",
]
