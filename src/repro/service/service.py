"""The partition service façade: requests in, tickets out.

:class:`PartitionService` turns the library's one-shot partitioners
into a long-lived serving tier shaped like an inference server:

* Clients call :meth:`PartitionService.submit` from any thread and get
  a :class:`PartitionTicket` immediately — admission control answers
  *now* (admitted, or rejected with a ``retry_after`` hint), the work
  itself resolves asynchronously.
* A single dispatcher thread pulls priority-ordered work from the
  :class:`~repro.service.queue.AdmissionQueue`, forms batches with the
  :class:`~repro.service.scheduler.BatchingScheduler`, and executes
  them: coalesced batches through
  :meth:`~repro.core.partitioner.FpgaPartitioner.partition_many`,
  oversized requests solo through the morsel engine.
* Deadlines are enforced at dequeue and at resolve; FPGA faults retry
  with bounded exponential backoff, then degrade to the CPU (SWWC)
  backend; saturation and open-circuit conditions skip straight to the
  CPU.  Every downgrade is recorded on the response and in
  :class:`~repro.service.metrics.ServiceMetrics`.

A single dispatcher is deliberate: the container this reproduction
targets has one core, so service throughput comes from *vectorised
coalescing* (one hash + one radix sort per batch), not from dispatcher
parallelism — the same amortisation argument as the paper's deeply
pipelined circuit, transplanted to the serving layer.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import (
    FpgaPartitioner,
    OverflowPolicy,
    PartitionedOutput,
)
from repro.cpu.partitioner import CpuPartitioner
from repro.errors import ReproError
from repro.obs.tracing import resolve_tracer
from repro.service.degradation import BackendFault, DegradationPolicy
from repro.service.metrics import ServiceMetrics
from repro.service.queue import AdmissionQueue, QueueFullError
from repro.service.scheduler import Batch, BatchingScheduler, request_signature
from repro.workloads.relations import Relation


class ServiceDrainingError(ReproError):
    """Submits are refused because the service is draining.

    Raised by :meth:`PartitionService.submit`/:meth:`submit_plan` once
    :meth:`PartitionService.drain` has begun: the service is completing
    already-admitted work but accepts nothing new.  Distinct from the
    generic not-running error so network front-ends (the gateway) can
    surface a structured "draining" outcome instead of a hard failure.
    """


class Priority(enum.IntEnum):
    """Admission-queue priority; higher dequeues first."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


class RequestStatus(enum.Enum):
    """Terminal state of a partition request."""

    OK = "ok"
    REJECTED = "rejected"
    TIMED_OUT = "timed-out"
    FAILED = "failed"


@dataclasses.dataclass
class PartitionRequest:
    """One client request: a relation plus how to partition it.

    Args:
        relation: a :class:`~repro.workloads.relations.Relation` or a
            bare uint32 key array.
        payloads: payload column when ``relation`` is a bare array.
        config: partitioner configuration; requests coalesce only with
            identical configs (see
            :func:`~repro.service.scheduler.request_signature`).
        priority: admission priority (higher first).
        deadline_s: optional per-request deadline, seconds from submit;
            expired requests resolve ``TIMED_OUT`` instead of running.
        on_overflow: PAD-mode overflow policy, forwarded to the kernel.
    """

    relation: "Relation | np.ndarray"
    payloads: Optional[np.ndarray] = None
    config: PartitionerConfig = dataclasses.field(
        default_factory=PartitionerConfig
    )
    priority: int = Priority.NORMAL
    deadline_s: Optional[float] = None
    on_overflow: OverflowPolicy = "raise"

    @property
    def num_tuples(self) -> int:
        if isinstance(self.relation, Relation):
            return self.relation.num_tuples
        return int(np.asarray(self.relation).shape[0])


@dataclasses.dataclass
class PlanRequest:
    """A whole-query request: a logical plan instead of one relation.

    The service executes the plan through the fused pipeline compiler
    (:func:`repro.plan.execute_plan`) — partition → build/probe →
    aggregate in one morsel pass — falling back to the staged operators
    (and marking the response degraded) if the fused pass errors.
    Admission control, priorities and deadlines apply to the *whole
    query*: ``num_tuples`` counts every scan, so a two-relation join
    plan is admitted against the same queue bounds as two partition
    requests of the same size.

    Args:
        plan: a :class:`repro.plan.LogicalPlan` (see the builders in
            :mod:`repro.plan.nodes`).
        priority / deadline_s: as on :class:`PartitionRequest`.
        fused: request the one-pass executor (default); ``False`` runs
            the staged reference pipeline.
    """

    plan: object
    priority: int = Priority.NORMAL
    deadline_s: Optional[float] = None
    fused: bool = True

    @property
    def num_tuples(self) -> int:
        return int(sum(scan.num_tuples for scan in self.plan.scans))


@dataclasses.dataclass
class PartitionResponse:
    """Terminal result delivered through a :class:`PartitionTicket`.

    ``spill`` is set when the request ran out-of-core: a
    :class:`~repro.storage.spill.PartitionSpill` handle whose partition
    files back the (lazily memory-mapped) ``output``.  The files belong
    to the caller from then on — drop them with ``spill.cleanup()``
    when done.
    """

    request_id: int
    status: RequestStatus
    output: Optional[PartitionedOutput] = None
    backend: Optional[str] = None  # "fpga"|"cpu"|"spill"|"fused"|"staged"
    spill: Optional[object] = None  # PartitionSpill when backend=="spill"
    result: Optional[object] = None  # QueryResult for PlanRequests
    degraded: bool = False
    degrade_reason: Optional[str] = None
    retry_after: Optional[float] = None  # set on REJECTED
    attempts: int = 0
    batch_size: int = 0
    queue_wait_s: float = 0.0
    execute_s: float = 0.0
    total_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK


class PartitionTicket:
    """Client-side handle for an in-flight request."""

    def __init__(self, request_id: int):
        self.request_id = request_id
        self._event = threading.Event()
        self._response: Optional[PartitionResponse] = None

    def done(self) -> bool:
        """True once the request has resolved (any terminal status)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> PartitionResponse:
        """Block until resolved; raises :class:`TimeoutError` if the
        client-side wait (not the request deadline) expires first."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not resolved within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _resolve(self, response: PartitionResponse) -> None:
        self._response = response
        self._event.set()


@dataclasses.dataclass
class _Pending:
    """Internal queue entry: request + ticket + precomputed batch key."""

    request: PartitionRequest
    ticket: PartitionTicket
    signature: Tuple
    tuples: int
    submitted_at: float
    deadline_at: Optional[float]
    #: root "request" span, opened at submit and ended at resolution
    span: Optional[object] = None
    #: optimizer decision, computed ahead of admission (None = static)
    decision: Optional[object] = None

    @property
    def force_spill(self) -> bool:
        """True when the optimizer routed this request multi-pass."""
        return self.decision is not None and self.decision.backend == "spill"


class PartitionService:
    """Long-lived serving façade over the FPGA and CPU partitioners.

    Args:
        max_queue_requests / max_queue_tuples: admission bounds (see
            :class:`~repro.service.queue.AdmissionQueue`).
        max_batch_requests / max_batch_tuples / split_tuples / linger_s:
            batching knobs (see
            :class:`~repro.service.scheduler.BatchingScheduler`);
            ``max_batch_requests=1`` with ``linger_s=0`` is the naive
            one-request-at-a-time baseline the benchmark compares
            against.
        spill_tuples: requests at or above this many tuples run
            out-of-core through :mod:`repro.storage.spill` instead of
            being held in memory (or rejected): the relation is staged
            into a chunked on-disk store, streamed through the kernel
            under ``spill_bytes_in_memory``, and the response carries a
            :class:`~repro.storage.spill.PartitionSpill` handle plus a
            lazily memory-mapped ``output``.  ``None`` (default)
            disables the spill path.
        spill_dir: directory for spill stores and runs (a fresh
            temporary directory per service if omitted).  Run
            directories outlive their response on purpose — the output
            *is* those files; callers drop them via
            ``response.spill.cleanup()``.
        spill_bytes_in_memory: in-memory budget for the spill path's
            buffered chunk outputs (see
            :class:`~repro.storage.spill.SpillPartitioner`).
        max_retries / retry_backoff_s / retry_backoff_cap_s: bounded
            exponential backoff for faulted FPGA calls before the CPU
            failover kicks in.
        policy: backend-health policy (faults, saturation, breaker); a
            permissive default is built if omitted.
        engine: execution-engine spec for kernel invocations (morsel
            splitting of oversized requests); ``"serial"`` by default —
            on the single-core target, parallel dispatch buys nothing.
        cpu_threads: thread count for the CPU (SWWC) failover backend.
        clock: injectable monotonic clock (tests).
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  Every
            request gets a root ``request`` span from submit to
            resolution, with ``queue_wait`` / ``batch`` / ``execute`` /
            ``resolve`` child spans beneath it; the tracer is forwarded
            to the scheduler and the kernel partitioners, so scheduler
            decisions and per-kernel spans land in the same trace.  The
            service's ``clock`` should be the tracer's clock (both
            default to ``time.monotonic``) so timestamps share one
            timeline.
        optimizer: optional
            :class:`~repro.optimize.optimizer.AdaptiveOptimizer` hook,
            consulted *ahead of admission* for every request.  The
            decision joins the batch signature (requests with
            different execution plans never share a kernel pass) and
            steers execution: sketch-hot keys are isolated into
            dedicated PAD regions, doomed PAD runs go straight to
            HIST, optimizer-routed requests run on the cpu or spill
            path without counting as degradations, and observed
            execute latencies flow back via ``optimizer.observe`` to
            recalibrate its rates.  Response contents stay
            byte-identical to the static path — only layout/base
            addresses and the accounting differ.  ``None`` (default)
            is the static escape hatch: every knob keeps the
            request's configuration.
    """

    def __init__(
        self,
        max_queue_requests: int = 1024,
        max_queue_tuples: Optional[int] = None,
        max_batch_requests: int = 64,
        max_batch_tuples: int = 1 << 20,
        split_tuples: Optional[int] = None,
        spill_tuples: Optional[int] = None,
        spill_dir=None,
        spill_bytes_in_memory: int = 64 << 20,
        linger_s: float = 0.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.002,
        retry_backoff_cap_s: float = 0.05,
        policy: Optional[DegradationPolicy] = None,
        engine: Optional[str] = "serial",
        cpu_threads: int = 1,
        clock=time.monotonic,
        tracer=None,
        optimizer=None,
    ):
        if max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0 or retry_backoff_cap_s < 0:
            raise ReproError("retry backoff values must be >= 0")
        self._clock = clock
        self.tracer = resolve_tracer(tracer)
        self.queue = AdmissionQueue(
            max_requests=max_queue_requests, max_tuples=max_queue_tuples
        )
        self.scheduler = BatchingScheduler(
            max_batch_requests=max_batch_requests,
            max_batch_tuples=max_batch_tuples,
            split_tuples=split_tuples,
            spill_tuples=spill_tuples,
            linger_s=linger_s,
            clock=clock,
            tracer=tracer,
        )
        self._spill_dir = spill_dir
        self.spill_bytes_in_memory = spill_bytes_in_memory
        self.metrics = ServiceMetrics(clock=clock)
        self.policy = policy or DegradationPolicy()
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self._engine_spec = engine
        self._cpu_threads = cpu_threads
        self.optimizer = optimizer
        self._fpga: Dict[Tuple, FpgaPartitioner] = {}
        self._cpu: Dict[Tuple, CpuPartitioner] = {}
        self._sequence = 0
        self._sequence_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "PartitionService":
        """Start the dispatcher thread; idempotent."""
        if self._stopped:
            raise ReproError("service already stopped; build a new one")
        if not self._started:
            self._started = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="partition-service-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()
        return self

    def drain(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful shutdown: refuse new work, finish admitted work.

        Three phases, in order:

        1. new :meth:`submit`/:meth:`submit_plan` calls raise
           :class:`ServiceDrainingError` immediately (a *clear* refusal
           — clients should fail over, not retry this instance);
        2. every already-admitted request runs to its normal terminal
           state (OK / TIMED_OUT / FAILED) and resolves its ticket;
        3. the dispatcher exits and the partitioner pools close.

        Idempotent, and :meth:`stop` afterwards is a no-op.  Used by
        ``repro serve`` and the gateway's SIGTERM handler.
        """
        if self._stopped:
            return
        self._draining = True
        if not self._started:
            self.stop(timeout)
            return
        # close() stops admission but leaves queued entries drainable;
        # the dispatch loop exits once the closed queue runs dry
        self.queue.close()
        assert self._dispatcher is not None
        self._dispatcher.join(timeout)
        self._stopped = True
        self._close_partitioners()

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun refusing new work."""
        return self._draining

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Stop admitting, drain queued work, join the dispatcher."""
        if not self._started or self._stopped:
            self._stopped = True
            self.queue.close()
            self._close_partitioners()
            return
        self._stopped = True
        self.queue.close()
        assert self._dispatcher is not None
        self._dispatcher.join(timeout)
        self._close_partitioners()

    def _close_partitioners(self) -> None:
        for partitioner in self._fpga.values():
            partitioner.close()
        for partitioner in self._cpu.values():
            partitioner.close()
        self._fpga.clear()
        self._cpu.clear()

    def __enter__(self) -> "PartitionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client side ----------------------------------------------------

    def submit(
        self, request: PartitionRequest, raise_on_reject: bool = False
    ) -> PartitionTicket:
        """Admit ``request``; always returns a ticket immediately.

        A rejected request's ticket is already resolved with
        ``RequestStatus.REJECTED`` and a ``retry_after`` hint; with
        ``raise_on_reject=True`` a
        :class:`~repro.service.queue.QueueFullError` is raised instead.
        """
        if self._draining:
            raise ServiceDrainingError(
                "service is draining; new submissions are refused "
                "(in-flight work will still complete)"
            )
        if not self._started or self._stopped:
            raise ReproError("service is not running (use start() or `with`)")
        with self._sequence_lock:
            self._sequence += 1
            request_id = self._sequence
        ticket = PartitionTicket(request_id)
        decision = (
            self._decide(request) if self.optimizer is not None else None
        )
        now = self._clock()
        pending = _Pending(
            request=request,
            ticket=ticket,
            # overflow policy joins the signature: a coalesced kernel
            # call applies one policy to the whole batch.  So does the
            # optimizer decision — requests with different execution
            # plans (backend, pad strategy, isolation set) must not
            # share a kernel pass.
            signature=request_signature(request.config)
            + (request.on_overflow,)
            + ((decision.batch_token,) if decision is not None else ()),
            tuples=request.num_tuples,
            submitted_at=now,
            deadline_at=(
                now + request.deadline_s
                if request.deadline_s is not None
                else None
            ),
            decision=decision,
        )
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "request",
                request_id=request_id,
                tuples=pending.tuples,
                priority=int(request.priority),
            )
            # anchor the root span at the submit timestamp from the
            # service clock, the clock every later stage measures with
            span.start_s = now
            pending.span = span
        self.metrics.increment("submitted")
        if not self.queue.offer(pending, int(request.priority), pending.tuples):
            retry_after = self.queue.retry_after_hint()
            self.metrics.increment("rejected")
            if pending.span is not None:
                pending.span.set_attributes(status="rejected")
                pending.span.end(self._clock())
            if raise_on_reject:
                raise QueueFullError(len(self.queue), retry_after)
            ticket._resolve(
                PartitionResponse(
                    request_id=request_id,
                    status=RequestStatus.REJECTED,
                    retry_after=retry_after,
                )
            )
            return ticket
        self.metrics.increment("admitted")
        self.metrics.set_gauge("queue_depth", len(self.queue))
        return ticket

    def submit_plan(
        self, request: "PlanRequest | object", raise_on_reject: bool = False
    ) -> PartitionTicket:
        """Admit a whole-query :class:`PlanRequest`; ticket immediately.

        A bare :class:`repro.plan.LogicalPlan` is accepted and wrapped
        with default priority/deadline.  Plan requests ride the same
        admission queue and dispatcher as partition requests but never
        coalesce (each carries a unique batch signature): batching,
        deadline enforcement and degradation accounting apply to the
        query as a unit.
        """
        if not isinstance(request, PlanRequest):
            request = PlanRequest(plan=request)
        if self._draining:
            raise ServiceDrainingError(
                "service is draining; new submissions are refused "
                "(in-flight work will still complete)"
            )
        if not self._started or self._stopped:
            raise ReproError("service is not running (use start() or `with`)")
        with self._sequence_lock:
            self._sequence += 1
            request_id = self._sequence
        ticket = PartitionTicket(request_id)
        now = self._clock()
        pending = _Pending(
            request=request,
            ticket=ticket,
            # unique per request: plan batches are solo by construction
            signature=("plan", request_id),
            tuples=request.num_tuples,
            submitted_at=now,
            deadline_at=(
                now + request.deadline_s
                if request.deadline_s is not None
                else None
            ),
        )
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "request",
                request_id=request_id,
                tuples=pending.tuples,
                priority=int(request.priority),
                plan=request.plan.describe(),
            )
            span.start_s = now
            pending.span = span
        self.metrics.increment("submitted")
        self.metrics.increment("plans_submitted")
        if not self.queue.offer(pending, int(request.priority), pending.tuples):
            retry_after = self.queue.retry_after_hint()
            self.metrics.increment("rejected")
            if pending.span is not None:
                pending.span.set_attributes(status="rejected")
                pending.span.end(self._clock())
            if raise_on_reject:
                raise QueueFullError(len(self.queue), retry_after)
            ticket._resolve(
                PartitionResponse(
                    request_id=request_id,
                    status=RequestStatus.REJECTED,
                    retry_after=retry_after,
                )
            )
            return ticket
        self.metrics.increment("admitted")
        self.metrics.set_gauge("queue_depth", len(self.queue))
        return ticket

    def _decide(self, request: PartitionRequest):
        """Consult the optimizer for one request's execution plan.

        Planning failures fall back to the static path rather than
        failing the request — the optimizer is an accelerator, not a
        gatekeeper.
        """
        try:
            if isinstance(request.relation, Relation):
                keys = request.relation.keys
            else:
                keys = np.ascontiguousarray(
                    request.relation, dtype=np.uint32
                )
            # a reused stale "keep" on a raise-policy PAD request could
            # surface an overflow raise the optimizer exists to prevent
            # — force a fresh profile exactly there
            reuse = not (
                request.on_overflow == "raise"
                and request.config.output_mode is OutputMode.PAD
            )
            decision = self.optimizer.decide(
                keys, request.config, reuse=reuse
            )
        except Exception:  # noqa: BLE001 - static fallback by design
            return None
        self.metrics.increment("optimized")
        if decision.pad_strategy == "isolate":
            self.metrics.increment("isolated")
        elif decision.pad_strategy == "hist":
            self.metrics.increment("preempted_hist")
        return decision

    def snapshot(self) -> dict:
        """Service metrics plus the optimizer's decision/rate state."""
        snap = self.metrics.to_dict()
        if self.optimizer is not None:
            snap["optimizer"] = self.optimizer.snapshot()
        return snap

    def partition(
        self,
        relation: "Relation | np.ndarray",
        payloads: Optional[np.ndarray] = None,
        config: Optional[PartitionerConfig] = None,
        timeout: Optional[float] = None,
        **request_kwargs,
    ) -> PartitionResponse:
        """Blocking convenience wrapper: submit and wait for the result."""
        request = PartitionRequest(
            relation=relation,
            payloads=payloads,
            config=config or PartitionerConfig(),
            **request_kwargs,
        )
        return self.submit(request).result(timeout)

    # -- dispatcher -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batches = self.scheduler.collect(self.queue, timeout=0.05)
            if not batches:
                if self.queue.closed and len(self.queue) == 0:
                    return
                continue
            self.metrics.set_gauge("queue_depth", len(self.queue))
            for batch in batches:
                self._execute_batch(batch)

    def _execute_batch(self, batch: Batch) -> None:
        now = self._clock()
        live: List[_Pending] = []
        for entry in batch.entries:
            if entry.deadline_at is not None and now > entry.deadline_at:
                self._resolve_timeout(entry, now)
            else:
                live.append(entry)
        if not live:
            return
        total_tuples = sum(entry.tuples for entry in live)
        self.metrics.set_gauge("inflight", total_tuples)
        for entry in live:
            self.metrics.observe("queue_wait", now - entry.submitted_at)
            if entry.span is not None:
                # retroactive: the wait was measured on service clocks
                self.tracer.record_span(
                    "queue_wait", entry.submitted_at, now, parent=entry.span
                )

        with self.tracer.span(
            "batch",
            requests=len(live),
            tuples=total_tuples,
            split=batch.split,
            spill=batch.spill,
        ):
            if isinstance(live[0].request, PlanRequest):
                # plan signatures are unique, so a plan batch is solo
                self._execute_plan(live[0])
            elif batch.spill:
                self._execute_spill(live)
            else:
                self._execute_live(batch, live, total_tuples)
        self.metrics.set_gauge("inflight", 0)

    def _execute_live(
        self, batch: Batch, live: List[_Pending], total_tuples: int
    ) -> None:
        """Backend selection + execution + resolution for live entries."""
        outputs: Optional[List[PartitionedOutput]] = None
        backend = "fpga"
        degraded = False
        degrade_reason: Optional[str] = None
        attempts = 0
        error: Optional[str] = None
        started = self._clock()
        # all entries of a batch share one decision (it is part of the
        # batch signature), so the head entry speaks for everyone
        decision = live[0].decision

        with self.tracer.span("execute") as exec_span:
            if decision is not None and decision.backend == "cpu":
                # optimizer-routed, not a degradation: the plan says
                # the CPU is the faster backend for this batch
                backend = "cpu"
                degrade_reason = "optimizer-routed"
                self.metrics.increment("routed_cpu", len(live))
                outputs, error = self._try_cpu(live)
            else:
                refusal = self.policy.admit_fpga(total_tuples)
                if refusal is None:
                    outputs, attempts, error = self._try_fpga(live, batch)
                    if outputs is None:
                        degrade_reason = error or "fpga-fault"
                else:
                    degrade_reason = refusal
                if outputs is None:
                    backend = "cpu"
                    degraded = True
                    self.metrics.increment("degraded", len(live))
                    outputs, error = self._try_cpu(live)
            exec_span.set_attributes(
                backend=backend,
                attempts=attempts,
                degraded=degraded,
                degrade_reason=degrade_reason,
            )
        execute_s = self._clock() - started
        if self.optimizer is not None and outputs is not None:
            self.optimizer.observe(backend, total_tuples, execute_s)

        with self.tracer.span("resolve", requests=len(live)):
            if outputs is None:
                self._resolve_failed(live, attempts, error)
            else:
                self._resolve_ok(
                    live, outputs, backend, degraded, degrade_reason,
                    attempts, execute_s, batch,
                )
                if execute_s > 0:
                    self.queue.note_drain_rate(total_tuples / execute_s)

    # -- backends -------------------------------------------------------

    def _try_fpga(
        self, live: List[_Pending], batch: Batch
    ) -> Tuple[Optional[List[PartitionedOutput]], int, Optional[str]]:
        """Run the batch on the FPGA model with bounded-backoff retry.

        Returns ``(outputs, attempts, error)``; ``outputs is None``
        means every attempt faulted (caller degrades to CPU).
        """
        partitioner = self._fpga_for(live[0])
        on_overflow: OverflowPolicy = live[0].request.on_overflow
        decision = live[0].decision
        isolate = (
            decision is not None
            and decision.pad_strategy == "isolate"
            and decision.isolate_keys
        )
        attempts = 0
        error: Optional[str] = None
        deadline = min(
            (e.deadline_at for e in live if e.deadline_at is not None),
            default=None,
        )
        for attempt in range(self.max_retries + 1):
            attempts += 1
            try:
                self.policy.before_fpga_call()
                if isolate:
                    from repro.optimize.isolation import partition_isolated

                    # heavy hitters go to dedicated regions; should the
                    # cold keys overflow anyway, degrade that entry to
                    # HIST accounting rather than raising at the client
                    outputs = [
                        partition_isolated(
                            partitioner,
                            entry.request.relation,
                            entry.request.payloads,
                            hot_keys=decision.isolate_keys,
                            on_overflow=(
                                "hist"
                                if entry.request.on_overflow == "raise"
                                else entry.request.on_overflow
                            ),
                        )
                        for entry in live
                    ]
                elif len(live) == 1:
                    outputs = [
                        partitioner.partition(
                            live[0].request.relation,
                            live[0].request.payloads,
                            on_overflow=on_overflow,
                        )
                    ]
                else:
                    outputs = partitioner.partition_many(
                        [entry.request.relation for entry in live],
                        [entry.request.payloads for entry in live],
                        on_overflow=on_overflow,
                    )
                self.policy.record_outcome(True)
                self.metrics.increment("fpga_invocations")
                return outputs, attempts, None
            except BackendFault as fault:
                self.policy.record_outcome(False)
                error = str(fault)
                if attempt == self.max_retries:
                    break
                backoff = min(
                    self.retry_backoff_cap_s,
                    self.retry_backoff_s * (2 ** attempt),
                )
                if (
                    deadline is not None
                    and self._clock() + backoff > deadline
                ):
                    break
                self.metrics.increment("retries")
                if backoff > 0:
                    time.sleep(backoff)
        return None, attempts, error

    def _try_cpu(
        self, live: List[_Pending]
    ) -> Tuple[Optional[List[PartitionedOutput]], Optional[str]]:
        """CPU (SWWC) failover path: solo calls, no coalescing."""
        partitioner = self._cpu_for(live[0])
        try:
            outputs = [
                partitioner.partition(
                    entry.request.relation, entry.request.payloads
                )
                for entry in live
            ]
        except Exception as exc:  # noqa: BLE001 - terminal failure path
            return None, f"{type(exc).__name__}: {exc}"
        self.metrics.increment("cpu_invocations")
        return outputs, None

    def _execute_spill(self, live: List[_Pending]) -> None:
        """Out-of-core path: stage to disk, stream, resolve with the
        spill handle.  Solo by construction (``Batch.spill`` batches
        hold one entry); failures resolve ``FAILED`` like any other
        terminal error."""
        started = self._clock()
        entry = live[0]
        try:
            with self.tracer.span("execute", backend="spill"):
                spill = self._run_spill(entry)
        except Exception as exc:  # noqa: BLE001 - terminal failure path
            self._resolve_failed(
                live, attempts=1, error=f"{type(exc).__name__}: {exc}"
            )
            return
        execute_s = self._clock() - started
        if self.optimizer is not None:
            self.optimizer.observe("spill", entry.tuples, execute_s)
        self.metrics.increment("spilled")
        with self.tracer.span("resolve", requests=1):
            now = self._clock()
            self.metrics.increment("completed")
            self.metrics.observe("execute", execute_s)
            self.metrics.observe("total", now - entry.submitted_at)
            if entry.span is not None:
                entry.span.set_attributes(
                    status="ok", backend="spill", batch_size=1
                )
                entry.span.end(now)
            entry.ticket._resolve(
                PartitionResponse(
                    request_id=entry.ticket.request_id,
                    status=RequestStatus.OK,
                    output=spill.to_output(),
                    backend="spill",
                    spill=spill,
                    attempts=1,
                    batch_size=1,
                    queue_wait_s=max(
                        0.0, now - execute_s - entry.submitted_at
                    ),
                    execute_s=execute_s,
                    total_s=now - entry.submitted_at,
                )
            )

    def _execute_plan(self, entry: _Pending) -> None:
        """Run one :class:`PlanRequest` through the fused executor.

        A fused failure degrades to the staged pipeline (recorded on
        the response, like the FPGA→CPU failover); a staged failure is
        terminal.
        """
        from repro.plan import execute_plan

        request: PlanRequest = entry.request
        started = self._clock()
        degraded = False
        degrade_reason: Optional[str] = None
        result = None
        error: Optional[str] = None
        with self.tracer.span("execute", backend="plan") as exec_span:
            try:
                result = execute_plan(
                    request.plan,
                    engine=self._engine_spec,
                    fused=request.fused,
                    tracer=self.tracer,
                    optimizer=self.optimizer,
                )
            except Exception as exc:  # noqa: BLE001 - degrade, then fail
                if request.fused:
                    degraded = True
                    degrade_reason = f"{type(exc).__name__}: {exc}"
                    try:
                        result = execute_plan(
                            request.plan,
                            engine=self._engine_spec,
                            fused=False,
                            tracer=self.tracer,
                            optimizer=self.optimizer,
                        )
                    except Exception as staged_exc:  # noqa: BLE001
                        error = f"{type(staged_exc).__name__}: {staged_exc}"
                else:
                    error = f"{type(exc).__name__}: {exc}"
            backend = (
                None if result is None
                else ("fused" if result.fused else "staged")
            )
            exec_span.set_attributes(
                backend=backend, degraded=degraded,
                degrade_reason=degrade_reason,
            )
        execute_s = self._clock() - started

        with self.tracer.span("resolve", requests=1):
            now = self._clock()
            if result is None:
                self._resolve_failed([entry], attempts=1, error=error)
                return
            self.metrics.increment("plans_completed")
            self.metrics.increment(
                "plans_fused" if result.fused else "plans_staged"
            )
            if degraded:
                self.metrics.increment("degraded")
            self.metrics.increment("completed")
            self.metrics.observe("execute", execute_s)
            self.metrics.observe("total", now - entry.submitted_at)
            if entry.span is not None:
                entry.span.set_attributes(
                    status="ok", backend=backend, degraded=degraded,
                    batch_size=1,
                )
                entry.span.end(now)
            entry.ticket._resolve(
                PartitionResponse(
                    request_id=entry.ticket.request_id,
                    status=RequestStatus.OK,
                    result=result,
                    backend=backend,
                    degraded=degraded,
                    degrade_reason=degrade_reason,
                    attempts=2 if degraded else 1,
                    batch_size=1,
                    queue_wait_s=max(
                        0.0, now - execute_s - entry.submitted_at
                    ),
                    execute_s=execute_s,
                    total_s=now - entry.submitted_at,
                )
            )

    def _spill_root(self):
        if self._spill_dir is None:
            import tempfile

            self._spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        import pathlib

        root = pathlib.Path(self._spill_dir)
        root.mkdir(parents=True, exist_ok=True)
        return root

    def _run_spill(self, entry: _Pending):
        """Stage one request into a store, spill-partition it, and
        return the :class:`~repro.storage.spill.PartitionSpill`."""
        from repro.core.modes import LayoutMode
        from repro.storage import RelationStore, SpillPartitioner

        request = entry.request
        root = self._spill_root()
        request_id = entry.ticket.request_id
        # VRID payloads are positions; the store generates exactly
        # those when no payload column is given.
        payloads = (
            None
            if request.config.layout_mode is LayoutMode.VRID
            else request.payloads
        )
        store = RelationStore.ingest(
            request.relation, root / f"store-{request_id}", payloads=payloads
        ).seal()
        spiller = SpillPartitioner(
            config=request.config,
            backend="fpga",
            engine=self._engine_spec,
            max_bytes_in_memory=self.spill_bytes_in_memory,
            tracer=self.tracer,
        )
        try:
            spill = spiller.run(
                store,
                root / f"run-{request_id}",
                # the spill path is already software; a requested "cpu"
                # fallback degenerates to the robust HIST accounting
                on_overflow=(
                    "hist"
                    if request.on_overflow == "cpu"
                    else request.on_overflow
                ),
            )
        finally:
            spiller.close()
        # the staging store is internal scratch: the partition files
        # hold all the data now, so drop it rather than leak 2x disk
        store.delete()
        return spill

    def _fpga_for(self, entry: _Pending) -> FpgaPartitioner:
        partitioner = self._fpga.get(entry.signature)
        if partitioner is None:
            config = entry.request.config
            if (
                entry.decision is not None
                and entry.decision.pad_strategy == "hist"
                and config.output_mode is OutputMode.PAD
            ):
                # the optimizer predicted this PAD run is doomed to
                # overflow: go straight to HIST accounting instead of
                # paying a failed PAD pass first.  Contents/counts are
                # identical across modes; the decision is part of the
                # signature, so the cache never mixes the two configs.
                config = dataclasses.replace(
                    config, output_mode=OutputMode.HIST
                )
            partitioner = FpgaPartitioner(
                config=config,
                engine=self._engine_spec,
                tracer=self.tracer,
            )
            self._fpga[entry.signature] = partitioner
        return partitioner

    def _cpu_for(self, entry: _Pending) -> CpuPartitioner:
        partitioner = self._cpu.get(entry.signature)
        if partitioner is None:
            partitioner = CpuPartitioner.matching(
                entry.request.config, threads=self._cpu_threads
            )
            self._cpu[entry.signature] = partitioner
        return partitioner

    # -- resolution -----------------------------------------------------

    def _resolve_timeout(self, entry: _Pending, now: float) -> None:
        self.metrics.increment("timed_out")
        self.metrics.observe("total", now - entry.submitted_at)
        if entry.span is not None:
            entry.span.set_attributes(status="timed-out")
            entry.span.end(now)
        entry.ticket._resolve(
            PartitionResponse(
                request_id=entry.ticket.request_id,
                status=RequestStatus.TIMED_OUT,
                queue_wait_s=now - entry.submitted_at,
                total_s=now - entry.submitted_at,
                error="deadline expired before execution",
            )
        )

    def _resolve_failed(
        self, live: List[_Pending], attempts: int, error: Optional[str]
    ) -> None:
        now = self._clock()
        self.metrics.increment("failed", len(live))
        for entry in live:
            self.metrics.observe("total", now - entry.submitted_at)
            if entry.span is not None:
                entry.span.set_attributes(status="failed", attempts=attempts)
                entry.span.end(now)
            entry.ticket._resolve(
                PartitionResponse(
                    request_id=entry.ticket.request_id,
                    status=RequestStatus.FAILED,
                    attempts=attempts,
                    total_s=now - entry.submitted_at,
                    error=error or "both backends failed",
                )
            )

    def _resolve_ok(
        self,
        live: List[_Pending],
        outputs: List[PartitionedOutput],
        backend: str,
        degraded: bool,
        degrade_reason: Optional[str],
        attempts: int,
        execute_s: float,
        batch: Batch,
    ) -> None:
        now = self._clock()
        self.metrics.observe_batch(len(live))
        if len(live) > 1:
            self.metrics.increment("coalesced_requests", len(live))
        if batch.split:
            self.metrics.increment("split_requests", len(live))
        self.metrics.increment("completed", len(live))
        self.metrics.observe("execute", execute_s)
        for entry, output in zip(live, outputs):
            total_s = now - entry.submitted_at
            self.metrics.observe("total", total_s)
            if entry.span is not None:
                entry.span.set_attributes(
                    status="ok",
                    backend=backend,
                    degraded=degraded,
                    batch_size=len(live),
                )
                entry.span.end(now)
            entry.ticket._resolve(
                PartitionResponse(
                    request_id=entry.ticket.request_id,
                    status=RequestStatus.OK,
                    output=output,
                    backend=backend,
                    degraded=degraded,
                    degrade_reason=degrade_reason,
                    attempts=attempts,
                    batch_size=len(live),
                    queue_wait_s=max(
                        0.0, now - execute_s - entry.submitted_at
                    ),
                    execute_s=execute_s,
                    total_s=total_s,
                )
            )
