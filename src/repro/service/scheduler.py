"""Batching scheduler: coalesce compatible requests, split huge ones.

The scheduler sits between the admission queue and the partitioner and
makes the one decision that dominates small-request throughput on this
simulator: *how many requests ride one kernel invocation*.  Per-call
fixed costs (hash setup, histogram allocation, the stable sort) are
amortised by coalescing every queued request with an identical
:func:`request_signature` into a single
:meth:`~repro.core.partitioner.FpgaPartitioner.partition_many` call —
one hash pass, one histogram, one radix sort for the whole batch,
with per-request outputs byte-identical to solo calls by construction.

Requests too large to benefit from coalescing go the other way: they
are *split* into morsels by the :mod:`repro.exec` engine inside a solo
``partition`` call, so one huge relation cannot add head-of-line
latency to a queue of small interactive requests.

Batch formation preserves the admission queue's priority order: the
dispatcher drains in priority-FIFO order and the scheduler groups
adjacent-compatible work without reordering across groups.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.modes import PartitionerConfig
from repro.errors import ReproError
from repro.obs.tracing import resolve_tracer
from repro.service.queue import AdmissionQueue


@functools.lru_cache(maxsize=None)
def request_signature(config: PartitionerConfig) -> Tuple:
    """Compatibility key: requests coalesce iff signatures are equal.

    Every field of :class:`~repro.core.modes.PartitionerConfig`
    participates — two requests are batchable only when a single kernel
    invocation with one config serves both exactly.  Configs are frozen
    (hashable) dataclasses, so the signature is memoised: it sits on
    the per-request submit path, where ``dataclasses.astuple``'s deep
    copy would cost more than the admission queue itself.
    """
    return tuple(
        getattr(config, field.name)
        for field in dataclasses.fields(config)
    )


@dataclasses.dataclass
class Batch:
    """One unit of dispatcher work: entries sharing a signature.

    ``split=True`` marks a deliberately-solo batch whose single entry is
    large enough to be morsel-split inside the engine instead of
    coalesced with neighbours.  ``spill=True`` marks a solo batch too
    large even for that — it exceeds the service's in-memory budget and
    is routed to the out-of-core spill path
    (:mod:`repro.storage.spill`) instead of being rejected.
    """

    entries: List[object]
    signature: Tuple
    total_tuples: int
    split: bool = False
    spill: bool = False

    def __len__(self) -> int:
        return len(self.entries)


class BatchingScheduler:
    """Forms :class:`Batch`\\ es from an :class:`AdmissionQueue`.

    Args:
        max_batch_requests: coalescing cap per kernel invocation.  The
            batched kernel packs ``(request, partition)`` into 16 bits,
            so ``max_batch_requests * num_partitions`` should stay under
            ``2**16``; ``partition_many`` sub-chunks internally if not.
        max_batch_tuples: cap on the *sum* of tuples per coalesced
            batch, bounding kernel working-set size.
        split_tuples: requests at or above this size skip coalescing
            and run solo with engine-side morsel splitting; defaults to
            ``max_batch_tuples`` (a request that would fill a batch by
            itself gains nothing from coalescing).
        spill_tuples: requests at or above this size exceed what the
            service wants resident in memory at once and are marked
            ``Batch.spill`` for the out-of-core path; ``None`` (the
            default) disables spill routing.
        linger_s: how long to wait after the first dequeue for more
            requests to arrive before dispatching a small batch — the
            classic batching latency/throughput trade (0 disables).
        clock: injectable monotonic clock (tests).
        tracer: optional :class:`~repro.obs.tracing.Tracer`; batch
            formation runs inside a ``schedule`` span and each
            coalesce/split decision is recorded as a span event.

    Entries handed to :meth:`collect` must expose ``signature`` and
    ``tuples`` attributes; the service precomputes both at admission.
    """

    def __init__(
        self,
        max_batch_requests: int = 64,
        max_batch_tuples: int = 1 << 20,
        split_tuples: Optional[int] = None,
        spill_tuples: Optional[int] = None,
        linger_s: float = 0.002,
        clock=time.monotonic,
        tracer=None,
    ):
        if max_batch_requests < 1:
            raise ReproError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}"
            )
        if max_batch_tuples < 1:
            raise ReproError(
                f"max_batch_tuples must be >= 1, got {max_batch_tuples}"
            )
        if linger_s < 0:
            raise ReproError(f"linger_s must be >= 0, got {linger_s}")
        self.max_batch_requests = max_batch_requests
        self.max_batch_tuples = max_batch_tuples
        self.split_tuples = (
            split_tuples if split_tuples is not None else max_batch_tuples
        )
        if self.split_tuples < 1:
            raise ReproError(
                f"split_tuples must be >= 1, got {self.split_tuples}"
            )
        if spill_tuples is not None and spill_tuples < 1:
            raise ReproError(
                f"spill_tuples must be >= 1, got {spill_tuples}"
            )
        self.spill_tuples = spill_tuples
        self.linger_s = linger_s
        self._clock = clock
        self._tracer = resolve_tracer(tracer)

    # ------------------------------------------------------------------

    def collect(
        self, queue: AdmissionQueue, timeout: Optional[float] = None
    ) -> List[Batch]:
        """Block up to ``timeout`` for work, then form batches.

        Returns [] on timeout or queue closure with nothing pending.
        One call drains at most ``max_batch_requests`` *per signature
        group already started* plus whatever arrived during the linger
        window; leftovers stay logically ordered for the next call
        because grouping never reorders across priority-FIFO positions.
        """
        first = queue.take(timeout)
        if first is None:
            return []
        with self._tracer.span("schedule") as span:
            entries = [first]
            if self.linger_s > 0 and len(queue) == 0:
                # small sleep to let a burst coalesce; skipped when the
                # queue already has depth (no point waiting for stragglers)
                deadline = self._clock() + self.linger_s
                while self._clock() < deadline and len(queue) == 0:
                    time.sleep(min(self.linger_s, 0.0005))
            entries.extend(queue.drain(4 * self.max_batch_requests - 1))
            batches = self.form_batches(entries)
            span.set_attributes(requests=len(entries), batches=len(batches))
            return batches

    def form_batches(self, entries: Sequence[object]) -> List[Batch]:
        """Group ``entries`` into batches without reordering groups.

        Spill rule first (over the memory budget → solo ``spill``
        batch for the out-of-core path), then splitting (oversized →
        solo ``split`` batch), then signature grouping with
        request-count and tuple-sum caps.
        """
        batches: List[Batch] = []
        open_by_signature: Dict[Tuple, int] = {}
        for entry in entries:
            tuples = entry.tuples
            if getattr(entry, "force_spill", False) or (
                self.spill_tuples is not None
                and tuples >= self.spill_tuples
            ):
                # an optimizer multi-pass routing forces the spill path
                # even below the static threshold
                self._tracer.add_event(
                    "scheduler.spill", tuples=tuples,
                    threshold=self.spill_tuples,
                )
                batches.append(
                    Batch(
                        entries=[entry],
                        signature=entry.signature,
                        total_tuples=tuples,
                        spill=True,
                    )
                )
                continue
            if tuples >= self.split_tuples:
                self._tracer.add_event(
                    "scheduler.split", tuples=tuples,
                    threshold=self.split_tuples,
                )
                batches.append(
                    Batch(
                        entries=[entry],
                        signature=entry.signature,
                        total_tuples=tuples,
                        split=True,
                    )
                )
                continue
            index = open_by_signature.get(entry.signature)
            if index is not None:
                batch = batches[index]
                if (
                    len(batch.entries) < self.max_batch_requests
                    and batch.total_tuples + tuples <= self.max_batch_tuples
                ):
                    batch.entries.append(entry)
                    batch.total_tuples += tuples
                    self._tracer.add_event(
                        "scheduler.coalesce", batch=index,
                        requests=len(batch.entries),
                        tuples=batch.total_tuples,
                    )
                    continue
            batches.append(
                Batch(
                    entries=[entry],
                    signature=entry.signature,
                    total_tuples=tuples,
                )
            )
            open_by_signature[entry.signature] = len(batches) - 1
        return batches
