"""Bounded admission queue with priorities and backpressure.

The serving tier's first line of defence: a queue that can say *no*.
Admission is bounded both in request count and (optionally) in queued
tuples, so a burst of clients cannot grow memory without bound — the
overload response is an immediate rejection carrying a ``retry_after``
hint, never an ever-longer queue (the classic inference-server
admission-control design, and the same flow-control stance as the
paper's circuit: back-pressure propagates to the *issue* side instead
of overflowing a FIFO).

Ordering is priority-first, FIFO within a priority level.  The queue
itself is deadline-agnostic; expiry is enforced by the dispatcher when
it dequeues (see :mod:`repro.service.service`), which keeps the heap
invariant trivial.
"""

from __future__ import annotations

import heapq
import threading
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError


class QueueFullError(ReproError):
    """The admission queue rejected an offer (backpressure).

    Carries the ``retry_after`` hint so callers that prefer exceptions
    over checking :meth:`AdmissionQueue.offer`'s return value still get
    the backoff signal.
    """

    def __init__(self, depth: int, retry_after: float):
        self.depth = depth
        self.retry_after = retry_after
        super().__init__(
            f"admission queue full at depth {depth}; retry after "
            f"{retry_after:.3f}s"
        )


class AdmissionQueue:
    """Bounded, prioritised MPSC queue for partition requests.

    Args:
        max_requests: hard bound on queued entries.
        max_tuples: optional additional bound on the *sum of tuples*
            queued — a count bound alone admits 1000 huge requests as
            readily as 1000 tiny ones.
        clock: injectable monotonic clock (tests).

    Entries are arbitrary objects; the queue orders them by the
    ``priority`` given to :meth:`offer` (higher first), FIFO within a
    level.  Producers are many client threads; the consumer is the
    service's dispatcher.
    """

    def __init__(
        self,
        max_requests: int = 1024,
        max_tuples: Optional[int] = None,
        clock=None,
    ):
        if max_requests < 1:
            raise ReproError(
                f"max_requests must be >= 1, got {max_requests}"
            )
        if max_tuples is not None and max_tuples < 1:
            raise ReproError(f"max_tuples must be >= 1, got {max_tuples}")
        self.max_requests = max_requests
        self.max_tuples = max_tuples
        self._heap: List[Tuple[int, int, int, object]] = []
        self._tuples_queued = 0
        self._sequence = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: EWMA of the dispatcher's drain rate, tuples/second — the
        #: basis of the ``retry_after`` hint handed to rejected clients
        self._drain_tuples_per_s = 0.0

    # -- producer side --------------------------------------------------

    def offer(self, item: object, priority: int, tuples: int) -> bool:
        """Try to admit ``item``; False means rejected (queue full).

        Never blocks: admission control answers immediately so clients
        can apply their own backoff instead of piling onto a lock.
        """
        with self._lock:
            if self._closed:
                return False
            if len(self._heap) >= self.max_requests:
                return False
            if (
                self.max_tuples is not None
                and self._tuples_queued + tuples > self.max_tuples
                and self._tuples_queued > 0
            ):
                return False
            self._sequence += 1
            heapq.heappush(
                self._heap, (-priority, self._sequence, tuples, item)
            )
            self._tuples_queued += tuples
            self._not_empty.notify()
            return True

    def retry_after_hint(self) -> float:
        """Suggested client backoff, from queue depth and drain rate.

        ``queued_tuples / drain_rate`` when the dispatcher has
        established a rate, else a depth-proportional guess.  Bounded
        to [10 ms, 5 s] so a cold or stalled service still hands out a
        sane hint.
        """
        with self._lock:
            if self._drain_tuples_per_s > 0:
                estimate = self._tuples_queued / self._drain_tuples_per_s
            else:
                estimate = 0.01 * (1 + len(self._heap) / self.max_requests)
            return float(min(5.0, max(0.01, estimate)))

    # -- consumer side --------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[object]:
        """Pop the highest-priority entry, blocking up to ``timeout``.

        Returns None on timeout or when the queue is closed and empty.
        """
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return self._pop_locked()

    def drain(self, limit: int) -> List[object]:
        """Pop up to ``limit`` entries without blocking (batch collect)."""
        if limit < 1:
            return []
        with self._lock:
            return [
                self._pop_locked()
                for _ in range(min(limit, len(self._heap)))
            ]

    def _pop_locked(self) -> object:
        _, _, tuples, item = heapq.heappop(self._heap)
        self._tuples_queued -= tuples
        return item

    def note_drain_rate(self, tuples_per_second: float) -> None:
        """Dispatcher feedback for :meth:`retry_after_hint` (EWMA)."""
        if tuples_per_second <= 0:
            return
        with self._lock:
            if self._drain_tuples_per_s == 0.0:
                self._drain_tuples_per_s = tuples_per_second
            else:
                self._drain_tuples_per_s = (
                    0.8 * self._drain_tuples_per_s + 0.2 * tuples_per_second
                )

    # -- lifecycle / introspection --------------------------------------

    def close(self) -> None:
        """Stop admitting; wake blocked consumers.  Queued entries stay
        drainable so shutdown can resolve them."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def tuples_queued(self) -> int:
        with self._lock:
            return self._tuples_queued

    def __iter__(self) -> Iterator[object]:
        """Snapshot of queued items, in no particular order (debug)."""
        with self._lock:
            return iter([entry[3] for entry in self._heap])
