"""Service observability: counters, latency histograms, throughput.

:class:`ServiceMetrics` is the single registry a
:class:`~repro.service.service.PartitionService` writes into.  It is
deliberately dependency-free (one lock, plain dicts) and exports in two
shapes:

* :meth:`ServiceMetrics.to_dict` — JSON-native, written into benchmark
  artifacts via :func:`repro.bench.reporting.write_json_artifact`;
* :meth:`ServiceMetrics.to_table` — an
  :class:`~repro.bench.reporting.ExperimentTable` for the CLI's ASCII
  rendering;
* :meth:`ServiceMetrics.to_prometheus` — text-format exposition for a
  Prometheus scrape (see :mod:`repro.obs.export`).

Latencies go into :class:`LatencyHistogram` — fixed log2 buckets from
1 µs to ~67 s, so recording is O(1), thread-safe under the registry
lock, and percentiles are bucket-resolution approximations (plenty for
spotting queueing vs execution time).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.bench.reporting import ExperimentTable

#: log2 bucket upper bounds in microseconds: 1us ... ~67s, then +inf
_BUCKET_COUNT = 27


class LatencyHistogram:
    """Log2-bucketed latency histogram (seconds in, buckets in µs).

    Not thread-safe on its own; :class:`ServiceMetrics` serialises
    access under its registry lock.
    """

    def __init__(self) -> None:
        self.buckets = [0] * _BUCKET_COUNT
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        micros = max(0.0, seconds) * 1e6
        index = 0
        bound = 1.0
        while micros > bound and index < _BUCKET_COUNT - 1:
            bound *= 2.0
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total_seconds += max(0.0, seconds)
        self.max_seconds = max(self.max_seconds, max(0.0, seconds))

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def quantile_seconds(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding it.

        Two edge cases are handled exactly rather than by bucket bound:
        ``q=0`` answers with the *lowest occupied* bucket (a cumulative
        target of zero is satisfied by the empty buckets below the
        data, which used to return the 1 µs bound regardless of where
        the observations sat), and every answer is clamped to
        ``max_seconds`` — in particular the open-ended overflow bucket,
        whose fixed ~67 s bound says nothing about observations that
        may be far larger (or smaller).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            for index, bucket in enumerate(self.buckets):
                if bucket:
                    return min((2.0 ** index) / 1e6, self.max_seconds)
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= target:
                if index == _BUCKET_COUNT - 1:
                    # overflow bucket: max_seconds is the only honest
                    # bound we hold for observations beyond the ladder
                    return self.max_seconds
                return min((2.0 ** index) / 1e6, self.max_seconds)
        return self.max_seconds

    def to_dict(self) -> dict:
        """JSON-native summary plus the raw buckets."""
        return {
            "count": self.count,
            "mean_s": self.mean_seconds,
            "p50_s": self.quantile_seconds(0.50),
            "p95_s": self.quantile_seconds(0.95),
            "p99_s": self.quantile_seconds(0.99),
            "max_s": self.max_seconds,
            "log2_us_buckets": list(self.buckets),
        }


#: every counter the service increments, so exports always carry the
#: full set (zeros included) and dashboards need no existence checks
COUNTERS = (
    "submitted",
    "admitted",
    "rejected",
    "completed",
    "timed_out",
    "failed",
    "degraded",
    "retries",
    "batches",
    "coalesced_requests",
    "split_requests",
    "spilled",
    "fpga_invocations",
    "cpu_invocations",
    # optimizer decision outcomes (repro.optimize wiring)
    "optimized",
    "isolated",
    "preempted_hist",
    "routed_cpu",
    # fused-pipeline plan requests (repro.plan wiring)
    "plans_submitted",
    "plans_completed",
    "plans_fused",
    "plans_staged",
)

#: per-request pipeline stages with a latency histogram each
STAGES = ("queue_wait", "execute", "total")


class ServiceMetrics:
    """Thread-safe metrics registry for one service instance."""

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.started_at = clock()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self.histograms: Dict[str, LatencyHistogram] = {
            stage: LatencyHistogram() for stage in STAGES
        }
        self.batch_sizes = LatencyHistogram()  # counts, not seconds
        self.gauges: Dict[str, float] = {"queue_depth": 0, "inflight": 0}

    # ------------------------------------------------------------------

    def increment(self, counter: str, amount: int = 1) -> None:
        """Add to a counter (must be one of :data:`COUNTERS`)."""
        with self._lock:
            self.counters[counter] += amount

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency observation for a pipeline stage."""
        with self._lock:
            self.histograms[stage].record(seconds)

    def observe_batch(self, requests: int) -> None:
        """Record one executed batch's request count."""
        with self._lock:
            self.counters["batches"] += 1
            # reuse the log2 histogram; "seconds" axis holds requests/1e6
            self.batch_sizes.record(requests / 1e6)

    def set_gauge(self, gauge: str, value: float) -> None:
        """Set a point-in-time gauge (queue depth, in-flight tuples)."""
        with self._lock:
            self.gauges[gauge] = value

    # ------------------------------------------------------------------

    def throughput_rps(self) -> float:
        """Completed requests per second since construction."""
        elapsed = max(1e-9, self._clock() - self.started_at)
        with self._lock:
            return self.counters["completed"] / elapsed

    def mean_batch_size(self) -> float:
        """Average requests per executed batch."""
        with self._lock:
            if self.batch_sizes.count == 0:
                return 0.0
            return self.batch_sizes.total_seconds * 1e6 / self.batch_sizes.count

    def snapshot(self) -> dict:
        """Alias of :meth:`to_dict` (conventional metrics name)."""
        return self.to_dict()

    def to_dict(self) -> dict:
        """JSON-native export of every counter, gauge and histogram."""
        with self._lock:
            elapsed = max(1e-9, self._clock() - self.started_at)
            return {
                "elapsed_s": elapsed,
                "throughput_rps": self.counters["completed"] / elapsed,
                "mean_batch_size": (
                    self.batch_sizes.total_seconds * 1e6 / self.batch_sizes.count
                    if self.batch_sizes.count
                    else 0.0
                ),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "latency": {
                    stage: hist.to_dict()
                    for stage, hist in self.histograms.items()
                },
            }

    def to_prometheus(self) -> str:
        """Prometheus text-format exposition of every counter, gauge
        and per-stage latency histogram (see
        :func:`repro.obs.export.prometheus_from_snapshot`)."""
        from repro.obs.export import prometheus_from_snapshot

        return prometheus_from_snapshot(self.to_dict())

    def to_table(self, experiment_id: str = "Service") -> ExperimentTable:
        """The ASCII-renderable summary (one row per stage + counters)."""
        data = self.to_dict()
        rows: List[List[object]] = []
        for stage in STAGES:
            latency = data["latency"][stage]
            rows.append(
                [
                    stage,
                    latency["count"],
                    1e3 * latency["mean_s"],
                    1e3 * latency["p50_s"],
                    1e3 * latency["p95_s"],
                    1e3 * latency["p99_s"],
                    1e3 * latency["max_s"],
                ]
            )
        counters = data["counters"]
        note = (
            f"{data['throughput_rps']:.0f} req/s; "
            f"mean batch {data['mean_batch_size']:.1f}; "
            + ", ".join(
                f"{name} {counters[name]}"
                for name in COUNTERS
                if counters[name]
            )
        )
        return ExperimentTable(
            experiment_id=experiment_id,
            title="per-stage latency and outcome counters",
            headers=[
                "stage", "n", "mean ms", "p50 ms", "p95 ms", "p99 ms",
                "max ms",
            ],
            rows=rows,
            note=note,
        )
