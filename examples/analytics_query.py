#!/usr/bin/env python
"""A full analytics query through the library.

The paper's Section 6 sketches the integration path: the FPGA
partitioner as a sub-operator inside a DBMS's relational operators.
This example composes the pieces into one query over a small star
schema —

    SELECT   o.customer, SUM(o.amount)
    FROM     orders o JOIN customers c ON o.customer = c.id
    WHERE    (customers are the join's build side)
    GROUP BY o.customer
    ORDER BY SUM DESC LIMIT 5

executed as: FPGA hash-partitions both relations (hybrid radix join),
the CPU builds+probes per partition to join, and the partitioned
group-by aggregates the join result — every step through the public
API, cross-checked against a plain pandas-style reference at the end.

Run:  python examples/analytics_query.py
"""

import numpy as np

from repro import (
    OutputMode,
    PartitionerConfig,
    hybrid_join,
    make_relation,
)
from repro.ops import partitioned_groupby
from repro.workloads.relations import Relation, Workload

NUM_CUSTOMERS = 10_000
NUM_ORDERS = 400_000
NUM_PARTITIONS = 256


def main() -> None:
    rng = np.random.default_rng(7)

    # dimension: customers (unique ids 1..N)
    customers = make_relation(NUM_CUSTOMERS, "linear", name="customers")
    # fact: orders, each referencing a customer, with an amount payload
    order_customers = rng.integers(
        1, NUM_CUSTOMERS + 1, size=NUM_ORDERS
    ).astype(np.uint32)
    amounts = rng.integers(1, 1000, size=NUM_ORDERS).astype(np.uint32)
    orders = Relation(
        keys=order_customers,
        payloads=np.arange(NUM_ORDERS, dtype=np.uint32),  # row ids
        name="orders",
    )
    print(f"orders: {NUM_ORDERS:,} rows; customers: {NUM_CUSTOMERS:,} rows")

    # --- join: customers (build) x orders (probe), FPGA-partitioned ----
    workload = Workload(
        name="q1", r=customers, s=orders, distribution="linear"
    )
    config = PartitionerConfig(
        num_partitions=NUM_PARTITIONS, output_mode=OutputMode.PAD
    )
    join = hybrid_join(
        workload, config, threads=10, collect_payloads=True,
        on_overflow="hist",
    )
    print(f"join produced {join.matches:,} matches "
          f"(every order has exactly one customer: "
          f"{'ok' if join.matches == NUM_ORDERS else 'MISMATCH'})")

    # --- aggregate: SUM(amount) GROUP BY customer over the join result -
    joined_customers = customers.keys[join.r_payloads]  # r payloads = row ids
    joined_amounts = amounts[join.s_payloads]           # s payloads = row ids
    report = partitioned_groupby(
        joined_customers.astype(np.uint32),
        joined_amounts,
        aggregate="sum",
        num_partitions=NUM_PARTITIONS,
    )
    order_totals = int(report.values.sum())
    print(f"aggregated into {report.num_groups:,} customer groups; "
          f"grand total {order_totals:,}")

    top = np.argsort(report.values)[::-1][:5]
    print("\ntop 5 customers by revenue:")
    for rank, i in enumerate(top, 1):
        print(f"  {rank}. customer {int(report.keys[i]):>6}: "
              f"{int(report.values[i]):>9,}")

    # --- cross-check against a straightforward reference ---------------
    reference = np.zeros(NUM_CUSTOMERS + 1, dtype=np.int64)
    np.add.at(reference, order_customers, amounts)
    got = report.as_dict()
    mismatches = sum(
        1
        for c in range(1, NUM_CUSTOMERS + 1)
        if reference[c] and got.get(c, 0) != reference[c]
    )
    print(f"\nreference cross-check: "
          f"{'ok' if mismatches == 0 else f'{mismatches} MISMATCHES'}")
    assert mismatches == 0
    assert order_totals == int(amounts.sum(dtype=np.int64))


if __name__ == "__main__":
    main()
