#!/usr/bin/env python
"""The paper's headline experiment: CPU join vs hybrid FPGA/CPU join.

Joins workload A (two 128e6-tuple linear-keyed relations, scaled down
for the data plane) with:

* the pure CPU radix hash join (partition + build + probe on the CPU);
* the hybrid join: FPGA partitions (PAD/VRID, its fastest mode), CPU
  builds and probes — paying the Section 2.2 coherence penalty for
  reading FPGA-written partitions.

The functional join runs on the scaled relations; the phase timings are
evaluated by the calibrated cost models at the paper's full size, so
the printed numbers are directly comparable to Figure 11a and the
Section 5.2 discussion (CPU ~436 Mtuples/s, hybrid ~406).

Run:  python examples/hybrid_join_demo.py
"""

from repro import (
    LayoutMode,
    OutputMode,
    PartitionerConfig,
    cpu_radix_join,
    hybrid_join,
    make_workload,
)
from repro.workloads.relations import WORKLOAD_SPECS

SCALE = 2000  # data plane runs at 1/2000 of the paper's size


def main() -> None:
    workload = make_workload("A", scale=SCALE)
    spec = WORKLOAD_SPECS["A"]
    print(
        f"workload A: |R| = |S| = {spec.r_tuples:,} tuples (paper scale); "
        f"joined here at 1/{SCALE} = {len(workload.r):,} tuples"
    )

    print(f"\n{'threads':>7} | {'CPU join':^33} | {'hybrid (PAD/VRID)':^33}")
    print(f"{'':>7} | {'part s':>9} {'b+p s':>9} {'Mt/s':>9} "
          f"| {'part s':>9} {'b+p s':>9} {'Mt/s':>9}")
    for threads in (1, 2, 4, 8, 10):
        cpu = cpu_radix_join(
            workload,
            num_partitions=8192,
            threads=threads,
            timing_r_tuples=spec.r_tuples,
            timing_s_tuples=spec.s_tuples,
        )
        hybrid = hybrid_join(
            workload,
            PartitionerConfig(
                num_partitions=8192,
                output_mode=OutputMode.PAD,
                layout_mode=LayoutMode.VRID,
            ),
            threads=threads,
            timing_r_tuples=spec.r_tuples,
            timing_s_tuples=spec.s_tuples,
        )
        assert cpu.matches == hybrid.matches, "joins must agree"
        print(
            f"{threads:>7} | {cpu.timing.partition_seconds:9.3f} "
            f"{cpu.timing.build_probe_seconds:9.3f} "
            f"{cpu.throughput_mtuples:9.0f} "
            f"| {hybrid.timing.partition_seconds:9.3f} "
            f"{hybrid.timing.build_probe_seconds:9.3f} "
            f"{hybrid.throughput_mtuples:9.0f}"
        )

    print(
        f"\nboth joins found {cpu.matches:,} matches on the scaled data."
    )
    print(
        "note how the FPGA partitioning time is constant while the CPU's"
        "\nshrinks with threads — and how the hybrid build+probe is always"
        "\nslower: the CPU's random probes into FPGA-written partitions are"
        "\nsnooped on the FPGA socket (Table 1: ~2.2x on random reads)."
    )


if __name__ == "__main__":
    main()
