#!/usr/bin/env python
"""Drive the cycle-level circuit simulator directly.

The paper's architectural claims — fully pipelined, no internal stalls
or locks, one 64 B cache line consumed and produced per clock cycle —
are statements about clock-level behaviour, so this example watches the
clock.  It runs the simulated circuit of Figure 5 on adversarial inputs
and across QPI bandwidths, printing cycles, stalls, forwarding
activity and the resulting lines-per-cycle rate.

Run:  python examples/cycle_simulation.py
"""

import numpy as np

from repro import HashKind, OutputMode, PartitionerConfig
from repro.core.circuit import PartitionerCircuit
from repro.core.tracer import CircuitTracer

N = 2048


def run(label, keys, qpi_bandwidth_gbs=None, config=None):
    config = config or PartitionerConfig(
        num_partitions=16,
        output_mode=OutputMode.PAD,
        hash_kind=HashKind.RADIX,
        pad_tuples=2 * N,
    )
    circuit = PartitionerCircuit(config, qpi_bandwidth_gbs=qpi_bandwidth_gbs)
    result = circuit.run(keys, np.arange(len(keys), dtype=np.uint32))
    stats = result.stats
    streaming = stats.partition_pass_cycles - stats.flush_cycles
    print(
        f"{label:32} {stats.cycles:7d} cycles "
        f"({stats.lines_in / max(1, streaming):.2f} lines/cycle streaming) "
        f"| stalls: {stats.combiner_stall_cycles:3d} "
        f"| forwarding hits: {stats.forwarding_hits:5d} "
        f"| back-pressure: {stats.input_backpressure_cycles:5d}"
    )
    return result


def main() -> None:
    rng = np.random.default_rng(0)
    uniform = rng.integers(0, 16, N, dtype=np.uint64).astype(np.uint32)
    burst = np.full(N, 5, dtype=np.uint32)           # one partition
    alternating = np.tile(np.array([3, 7], dtype=np.uint32), N // 2)

    print(f"=== input patterns, unthrottled link ({N} 8 B tuples) ===")
    run("uniform random", uniform)
    run("single-partition burst", burst)
    run("two partitions alternating", alternating)
    print("\nno pattern stalls the pipeline — the forwarding registers "
          "absorb the\nfill-rate BRAM's 2-cycle latency (Section 4.2).")

    print("\n=== QPI bandwidth sweep (uniform input) ===")
    for bandwidth in (25.6, 12.8, 6.97, 3.0):
        run(f"link = {bandwidth:5.2f} GB/s", uniform,
            qpi_bandwidth_gbs=bandwidth)
    print("\nthe circuit wants one line read AND one written per cycle — "
          "2 x 64 B x 200 MHz\n= 25.6 GB/s, exactly the bandwidth of the "
          "paper's 'raw FPGA' wrapper (Section 4.7).\nAnything less "
          "back-pressures the reads; the Xeon+FPGA's real QPI gives "
          "~6.5-7 GB/s.")

    print("\n=== HIST vs PAD pass structure ===")
    pad = run("PAD (one pass)", uniform)
    hist_config = PartitionerConfig(
        num_partitions=16, output_mode=OutputMode.HIST,
        hash_kind=HashKind.RADIX,
    )
    hist = run("HIST (two passes)", uniform, config=hist_config)
    print(
        f"\nHIST spent {hist.stats.histogram_pass_cycles} extra cycles on "
        f"its histogram pass and wrote tuples to\nexact prefix-sum "
        f"addresses — its regions are sized to the tuple, where PAD\n"
        f"reserves fixed-size regions up front.  Both flush the same "
        f"partially filled\nwrite-combiner lines at the end "
        f"({hist.stats.dummy_slots_out} dummy slots here)."
    )

    print("\n=== waveform: where back-pressure lives (link = 6.97 GB/s) ===")
    tracer = CircuitTracer()
    config = PartitionerConfig(
        num_partitions=16,
        output_mode=OutputMode.PAD,
        hash_kind=HashKind.RADIX,
        pad_tuples=2 * N,
    )
    PartitionerCircuit(config, qpi_bandwidth_gbs=6.97).run(
        uniform, np.arange(N, dtype=np.uint32), on_cycle=tracer
    )
    print(tracer.render(width=64,
                        signals=["lane0.in", "lane0.out", "last-stage"]))
    print("\nthe last-stage FIFO rides the link's duty cycle and "
          "saturates during the\nflush burst; the first-stage FIFOs stay "
          "empty because the issue logic\nthrottles reads before they "
          "could overflow (Section 4.3's guarantee).")


if __name__ == "__main__":
    main()
