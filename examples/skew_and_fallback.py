#!/usr/bin/env python
"""Skew handling: PAD-mode overflow and the HIST/CPU fallbacks.

Section 5.4 of the paper: PAD mode preassigns fixed-size partition
regions, which fails "under large skews with a Zipf factor of more than
0.25"; when a region overflows, the run aborts and the system falls
back — to the two-pass HIST mode (robust against any skew) or to the
CPU partitioner.

This script sweeps the Zipf factor and shows, per factor, whether PAD
fits, what the fallback costs, and how the skew flows through to the
join's build+probe phase.

Run:  python examples/skew_and_fallback.py
"""

import numpy as np

from repro import (
    FpgaPartitioner,
    OutputMode,
    PartitionerConfig,
    PartitionOverflowError,
    balance_report,
    hybrid_join,
    make_workload,
)
from repro.workloads.distributions import zipf_keys
from repro.workloads.relations import WORKLOAD_SPECS

N = 200_000
NUM_PARTITIONS = 256


def main() -> None:
    fair = N // NUM_PARTITIONS
    pad_config = PartitionerConfig(
        num_partitions=NUM_PARTITIONS,
        output_mode=OutputMode.PAD,
        pad_tuples=fair // 2,  # a realistic 50% padding
    )

    print(f"{N} tuples, {NUM_PARTITIONS} partitions, padding = 50% of "
          f"the fair share ({fair} tuples)\n")
    print(f"{'zipf':>5} {'max/mean':>9} {'PAD result':>22} "
          f"{'extra traffic':>14}")
    for zipf in (0.0, 0.25, 0.5, 0.75, 1.0, 1.5):
        keys = zipf_keys(N, zipf_factor=zipf, key_space=N, seed=1)
        payloads = np.arange(N, dtype=np.uint32)
        report = balance_report(
            np.bincount(
                np.asarray(
                    FpgaPartitioner(pad_config)
                    .partition(keys, payloads, on_overflow="hist")
                    .counts
                ),
            )
        )

        partitioner = FpgaPartitioner(pad_config)
        try:
            out = partitioner.partition(keys, payloads)
            verdict = "fits in one pass"
            extra = "-"
        except PartitionOverflowError as error:
            out = partitioner.partition(keys, payloads, on_overflow="hist")
            verdict = f"overflow@p{error.partition} -> HIST"
            # HIST costs a second scan plus the aborted PAD scan
            extra = f"{out.bytes_read / (N * 8):.1f}x reads"
        hashed = FpgaPartitioner(
            PartitionerConfig(
                num_partitions=NUM_PARTITIONS, output_mode=OutputMode.HIST
            )
        ).partition(keys, payloads)
        print(
            f"{zipf:5.2f} "
            f"{hashed.counts.max() / hashed.counts.mean():9.1f} "
            f"{verdict:>22} {extra:>14}"
        )

    # The skew also throttles the join's build+probe (Figure 13):
    spec = WORKLOAD_SPECS["A"]
    print("\njoin on workload A with Zipf-skewed S (10 threads, "
          "FPGA HIST/RID):")
    for zipf in (0.25, 1.0, 1.75):
        workload = make_workload("A", scale=2000, skew_s_zipf=zipf)
        result = hybrid_join(
            workload,
            PartitionerConfig(num_partitions=8192,
                              output_mode=OutputMode.HIST),
            threads=10,
            timing_r_tuples=spec.r_tuples,
            timing_s_tuples=spec.s_tuples,
        )
        print(
            f"  zipf {zipf:4.2f}: partition {result.timing.partition_seconds:.3f} s, "
            f"build+probe {result.timing.build_probe_seconds:.3f} s, "
            f"{result.matches:,} matches"
        )
    print("\nHIST partitioning time is skew-blind (two fixed scans); the "
          "skew surfaces in the probe phase instead.")


if __name__ == "__main__":
    main()
