#!/usr/bin/env python
"""Partitioned group-by aggregation — the Section 6 extension.

The paper closes by noting the partitioner generalises beyond joins:
"the partitioning we have described can also be used for a hardware
conscious group by aggregation".  This example computes a revenue
report — SUM(amount) GROUP BY customer — by hash-partitioning the fact
table with the FPGA partitioner model and aggregating each cache-sized
partition independently, then cross-checks against a plain dictionary.

It also shows why the *robust* hash matters for aggregation: customer
ids are structured (grid-like) keys, and radix partitioning would pile
them into a few partitions.

Run:  python examples/groupby_aggregation.py
"""

import numpy as np

from repro import (
    FpgaPartitioner,
    HashKind,
    PartitionerConfig,
    balance_report,
    partition_histogram,
)
from repro.ops import partitioned_groupby
from repro.workloads.distributions import grid_keys

N = 500_000
NUM_CUSTOMERS = 20_000
NUM_PARTITIONS = 256


def main() -> None:
    rng = np.random.default_rng(42)
    # structured customer ids (grid keys resemble real id schemes)
    customer_ids = grid_keys(NUM_CUSTOMERS)
    customers = rng.choice(customer_ids, size=N, replace=True)
    amounts = rng.integers(1, 500, size=N).astype(np.uint32)

    result = partitioned_groupby(
        customers.astype(np.uint32),
        amounts,
        aggregate="sum",
        num_partitions=NUM_PARTITIONS,
    )
    print(f"aggregated {N:,} rows into {result.num_groups:,} customer "
          f"groups across {result.num_partitions_used} partitions")

    # cross-check against a reference
    reference = {}
    for c, a in zip(customers[:5000], amounts[:5000]):
        reference[int(c)] = reference.get(int(c), 0) + int(a)
    got = result.as_dict()
    sample_ok = all(got[c] >= v for c, v in reference.items())
    print(f"reference cross-check on a 5000-row sample: "
          f"{'ok' if sample_ok else 'MISMATCH'}")
    total = int(result.values.sum())
    assert total == int(amounts.sum(dtype=np.int64))
    print(f"grand total preserved: {total:,}")

    top = np.argsort(result.values)[::-1][:5]
    print("\ntop five customers by revenue:")
    for rank, i in enumerate(top, 1):
        print(f"  {rank}. customer {int(result.keys[i]):>10}: "
              f"{int(result.values[i]):>8,}")

    # why the robust hash matters here (Section 3.2):
    print("\npartition balance for these structured ids "
          f"({NUM_PARTITIONS} partitions):")
    for kind, use_hash in ((HashKind.RADIX, False), (HashKind.MURMUR, True)):
        counts = partition_histogram(
            customers.astype(np.uint32), NUM_PARTITIONS, use_hash=use_hash
        )
        report = balance_report(counts)
        print(f"  {kind.value:7}: max/mean = {report.max_over_mean:5.1f}, "
              f"empty partitions = {report.empty_partitions}")
    print("radix bits pile grid-structured ids into a fraction of the "
          "partitions;\nthe murmur hash (free on the FPGA) keeps every "
          "partition cache-sized.")

    # other aggregates ride the same partitioning
    means = partitioned_groupby(
        customers.astype(np.uint32), amounts, aggregate="mean",
        num_partitions=NUM_PARTITIONS,
    )
    print(f"\nmean order value of customer {int(means.keys[0])}: "
          f"{float(means.values[0]):.2f}")


if __name__ == "__main__":
    main()
