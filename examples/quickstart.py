#!/usr/bin/env python
"""Quickstart: partition a relation with the FPGA partitioner model.

Covers the essentials in one script:

* generate a relation (4 B keys + 4 B payloads, the paper's 8 B tuples);
* partition it in each of the four operating modes of Section 4.5;
* read the traffic accounting (bytes over QPI, dummy padding);
* ask the Section 4.6 analytical model what the real hardware would
  sustain for each mode on the Xeon+FPGA prototype;
* re-partition through the morsel-driven execution engine
  (``engine=/threads=``) and check the output is byte-identical.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FpgaCostModel,
    FpgaPartitioner,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
    make_relation,
)


def main() -> None:
    # One million random-keyed tuples, 1024-way fan-out.
    relation = make_relation(1_000_000, "random", seed=7)
    print(f"relation: {relation.num_tuples} tuples, "
          f"{relation.total_bytes / 1e6:.0f} MB")

    model = FpgaCostModel()
    print(f"\n{'mode':10} {'r':>4} {'max part.':>10} {'padding':>8} "
          f"{'QPI MB':>8} {'paper-rate Mt/s':>16}")
    for output_mode in OutputMode:
        for layout_mode in LayoutMode:
            config = PartitionerConfig(
                num_partitions=1024,
                output_mode=output_mode,
                layout_mode=layout_mode,
            )
            partitioner = FpgaPartitioner(config)
            out = partitioner.partition(relation)

            # what the prototype would sustain at this mode (Figure 9)
            rate = model.end_to_end_mtuples(
                config, relation.num_tuples, calibrated=True
            )
            print(
                f"{config.mode_label:10} "
                f"{config.read_write_ratio():4.1f} "
                f"{out.max_partition_tuples():10d} "
                f"{100 * out.padding_fraction:7.2f}% "
                f"{out.total_bytes / 1e6:8.1f} "
                f"{rate:16.0f}"
            )

    # Partition contents are real data, ready for a consumer:
    config = PartitionerConfig(num_partitions=1024)
    out = FpgaPartitioner(config).partition(relation)
    keys, payloads = out.partition(42)
    print(f"\npartition 42 holds {keys.shape[0]} tuples; "
          f"first key = {int(keys[0])}, payload = {int(payloads[0])}")
    print("every key in partition 42 hashes there — that is the "
          "murmur robustness of Section 3.2.")

    # The morsel-driven execution engine (docs/EXECUTION.md) runs the
    # histogram and scatter on a worker pool; the result is
    # byte-identical to the single-shot path above.
    parallel = FpgaPartitioner(
        config, engine="parallel", threads=4
    ).partition(relation)
    identical = all(
        np.array_equal(a, b)
        for a, b in zip(out.partition_keys, parallel.partition_keys)
    )
    print(f"\nmorsel engine (4 workers) output identical: {identical}")


if __name__ == "__main__":
    main()
