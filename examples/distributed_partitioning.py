#!/usr/bin/env python
"""Rack-scale partitioning for distributed joins — the second
Section 6 future-work use case.

"The second one is to have the FPGA partitioner directly connected to
the network to distribute the data across machines using RDMA for
highly scaled distributed joins" (following Barthels et al. [6, 7]).

This example splits a relation over a 4-node cluster, has every node
hash-partition its chunk with the FPGA partitioner model, plans the
all-to-all exchange (who ships how many bytes to whom), executes it,
and verifies the reassembled result equals single-node partitioning.
It then compares the per-node partitioning rate against an FDR
InfiniBand link to show why a partitioner at the NIC runs at line rate.

Run:  python examples/distributed_partitioning.py
"""

import numpy as np

from repro import FpgaPartitioner, PartitionerConfig, make_relation
from repro.ops.distributed import DistributedPartitioner

NODES = 4
N = 400_000


def main() -> None:
    relation = make_relation(N, "random", seed=99)
    config = PartitionerConfig(num_partitions=256)
    cluster = DistributedPartitioner(NODES, config, link_gbs=4.5)

    chunks = cluster.split_relation(relation)
    print(f"{N:,} tuples dealt over {NODES} nodes "
          f"({len(chunks[0]):,} each)")

    plan = cluster.plan(chunks)
    print("\nexchange matrix (MB sent, row = sender, col = receiver):")
    for sender in range(NODES):
        cells = "  ".join(
            f"{plan.bytes_matrix[sender, receiver] / 1e6:6.3f}"
            for receiver in range(NODES)
        )
        print(f"  node {sender}: {cells}")
    print(f"cross-node traffic: {plan.total_bytes / 1e6:.2f} MB "
          f"({100 * plan.total_bytes / relation.total_bytes:.0f}% of the "
          f"relation — the (n-1)/n all-to-all share)")
    print(f"receive imbalance : {plan.receive_imbalance:.3f} "
          "(murmur keeps the owners balanced)")

    result = cluster.execute(chunks)
    single = FpgaPartitioner(config).partition(relation)
    for p in range(config.num_partitions):
        owner = cluster.owner_of(p)
        got = result.node_partition_keys[owner].get(
            p, np.empty(0, dtype=np.uint32)
        )
        assert sorted(map(int, got)) == sorted(
            map(int, single.partition_keys[p])
        )
    print("\nreassembled cluster result == single-node partitioning: ok")
    for node in range(NODES):
        print(f"  node {node} owns {len(result.node_partition_keys[node])} "
              f"partitions, {result.node_tuples(node):,} tuples")

    partition_s, exchange_s = cluster.estimate_seconds(128 * 10**6)
    print(f"\nper node, at the paper's 128M-tuple scale:")
    print(f"  FPGA partitioning : {partition_s:.3f} s "
          f"(~{128e6 * 8 / partition_s / 1e9:.1f} GB/s)")
    print(f"  RDMA exchange     : {exchange_s:.3f} s at 4.5 GB/s")
    print("the partitioner runs at network line rate — partitioning "
          "overlaps the exchange\ninstead of preceding it, which is the "
          "point of putting it on the NIC.")


if __name__ == "__main__":
    main()
