#!/usr/bin/env python
"""Serving-tier quickstart: the PartitionService end to end.

The library's partitioners are one-shot calls; ``repro.service`` turns
them into a long-lived serving tier (docs/SERVICE.md).  This demo walks
the whole surface in under a second:

* submit a burst of mixed-priority requests and watch the batching
  scheduler coalesce them into a handful of kernel invocations;
* verify a served result is byte-identical to a direct
  ``FpgaPartitioner`` call;
* overload a tiny admission queue and read the ``retry_after`` hints
  from the rejections;
* inject FPGA faults and watch requests degrade to the CPU (SWWC)
  backend with the downgrade recorded on each response.

Run:  python examples/serve_demo.py
"""

import numpy as np

from repro import FpgaPartitioner, PartitionerConfig
from repro.service import (
    DegradationPolicy,
    FaultInjector,
    PartitionRequest,
    PartitionService,
    Priority,
    RequestStatus,
)


def make_burst(count: int, seed: int = 0) -> list:
    """A burst of small mixed-priority requests with one shared config."""
    rng = np.random.default_rng(seed)
    config = PartitionerConfig(num_partitions=64)
    priorities = (Priority.LOW, Priority.NORMAL, Priority.HIGH)
    return [
        PartitionRequest(
            relation=rng.integers(
                0, 2**32, size=int(size), dtype=np.uint64
            ).astype(np.uint32),
            config=config,
            priority=priorities[i % 3],
        )
        for i, size in enumerate(rng.integers(256, 2048, size=count))
    ]


def main() -> None:
    # -- 1. batched serving --------------------------------------------
    requests = make_burst(90)
    with PartitionService(max_batch_requests=64) as service:
        tickets = [service.submit(request) for request in requests]
        responses = [ticket.result(timeout=60) for ticket in tickets]
    ok = sum(response.ok for response in responses)
    counters = service.metrics.to_dict()["counters"]
    print(f"served {ok}/{len(requests)} requests in "
          f"{counters['fpga_invocations']} coalesced kernel invocations "
          f"(mean batch {service.metrics.mean_batch_size():.0f})")

    # -- 2. byte-identical to a direct call ----------------------------
    direct = FpgaPartitioner(requests[0].config).partition(
        requests[0].relation
    )
    served = responses[0].output
    identical = np.array_equal(direct.counts, served.counts) and all(
        np.array_equal(a, b)
        for a, b in zip(direct.partition_keys, served.partition_keys)
    )
    print(f"served output byte-identical to direct partitioner: "
          f"{identical}")

    # -- 3. admission control under overload ---------------------------
    with PartitionService(max_queue_requests=8) as service:
        tickets = [service.submit(request) for request in make_burst(64)]
        responses = [ticket.result(timeout=60) for ticket in tickets]
    rejected = [
        response for response in responses
        if response.status is RequestStatus.REJECTED
    ]
    print(f"tiny queue (8 slots): {len(rejected)} rejected with "
          f"retry_after hints, e.g. {rejected[0].retry_after:.3f}s "
          "— overload answers now, it never queues unboundedly")

    # -- 4. graceful degradation to the CPU backend --------------------
    policy = DegradationPolicy(
        fault_injector=FaultInjector(fail_rate=1.0, seed=1)
    )
    with PartitionService(policy=policy, max_retries=1) as service:
        response = service.partition(
            make_burst(1)[0].relation, timeout=60
        )
    print(f"with the FPGA faulting: status={response.status.value}, "
          f"backend={response.backend}, degraded={response.degraded} "
          f"({response.degrade_reason}) — same bytes, slower path")


if __name__ == "__main__":
    main()
