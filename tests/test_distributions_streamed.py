"""Tests for the streamed key generation and histograms."""

import numpy as np
import pytest

from repro.analysis.histogram import (
    partition_histogram,
    partition_histogram_streamed,
)
from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    KeyDistribution,
    generate_keys,
    iter_key_chunks,
)


class TestIterKeyChunks:
    @pytest.mark.parametrize(
        "name", ["linear", "grid", "reverse_grid"]
    )
    def test_chunks_concatenate_to_whole(self, name):
        n = 10_000
        whole = generate_keys(name, n)
        chunks = list(iter_key_chunks(name, n, chunk_size=1234))
        assert np.array_equal(np.concatenate(chunks), whole)

    def test_random_chunks_match_whole_stream(self):
        n = 5000
        whole = generate_keys("random", n, seed=7)
        chunks = np.concatenate(
            list(iter_key_chunks("random", n, chunk_size=999, seed=7))
        )
        assert np.array_equal(chunks, whole)

    def test_chunk_sizes(self):
        chunks = list(iter_key_chunks("linear", 10, chunk_size=4))
        assert [c.shape[0] for c in chunks] == [4, 4, 2]

    def test_zipf_rejected(self):
        with pytest.raises(ConfigurationError):
            list(iter_key_chunks(KeyDistribution.ZIPF, 10))

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            list(iter_key_chunks("linear", 10, chunk_size=0))


class TestStreamedHistogram:
    @pytest.mark.parametrize("use_hash", [True, False])
    def test_matches_materialised(self, use_hash):
        n = 20_000
        whole = partition_histogram(
            generate_keys("grid", n), 256, use_hash=use_hash
        )
        streamed = partition_histogram_streamed(
            "grid", n, 256, use_hash=use_hash, chunk_size=3000
        )
        assert np.array_equal(whole, streamed)

    def test_counts_sum(self):
        streamed = partition_histogram_streamed(
            "reverse_grid", 12345, 64, use_hash=False, chunk_size=1000
        )
        assert streamed.sum() == 12345

    def test_full_scale_reverse_grid_shape(self):
        """The Figure 12 timing input: at paper scale, reverse-grid
        radix partitions are ~4x the fair share — imbalanced enough to
        hurt build+probe but not collapsed to a handful (that only
        happens on small samples)."""
        n = 128 * 10**6
        counts = partition_histogram_streamed(
            "reverse_grid", n, 8192, use_hash=False, chunk_size=1 << 23
        )
        occupied = int((counts > 0).sum())
        fair = n / 8192
        assert 1000 < occupied < 4096
        assert counts.max() < 10 * fair
