"""Tests for the Section 6 operator extensions (repro.ops)."""

import numpy as np
import pytest

from repro.core.modes import HashKind, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ConfigurationError
from repro.ops import RangePartitioner, partitioned_groupby
from repro.workloads.distributions import random_keys, reverse_grid_keys
from repro.workloads.relations import make_relation


def reference_groupby(keys, values, aggregate):
    out = {}
    for k, v in zip(map(int, keys), map(int, values)):
        out.setdefault(k, []).append(v)
    if aggregate == "sum":
        return {k: sum(v) for k, v in out.items()}
    if aggregate == "count":
        return {k: len(v) for k, v in out.items()}
    if aggregate == "min":
        return {k: min(v) for k, v in out.items()}
    if aggregate == "max":
        return {k: max(v) for k, v in out.items()}
    if aggregate == "mean":
        return {k: sum(v) / len(v) for k, v in out.items()}
    raise AssertionError(aggregate)


class TestGroupBy:
    @pytest.fixture
    def data(self, rng):
        keys = rng.integers(0, 50, size=2000, dtype=np.uint64).astype(
            np.uint32
        )
        values = rng.integers(1, 100, size=2000, dtype=np.uint64).astype(
            np.uint32
        )
        return keys, values

    @pytest.mark.parametrize(
        "aggregate", ["sum", "count", "min", "max", "mean"]
    )
    def test_matches_reference(self, data, aggregate):
        keys, values = data
        result = partitioned_groupby(
            keys, values, aggregate=aggregate, num_partitions=16
        )
        expected = reference_groupby(keys, values, aggregate)
        assert result.num_groups == len(expected)
        for k, v in result.as_dict().items():
            assert v == pytest.approx(expected[k])

    def test_keys_sorted(self, data):
        keys, values = data
        result = partitioned_groupby(keys, values, num_partitions=16)
        assert np.all(np.diff(result.keys.astype(np.int64)) > 0)

    def test_count_defaults_values(self, data):
        keys, _ = data
        result = partitioned_groupby(
            keys, aggregate="count", num_partitions=16
        )
        assert int(result.values.sum()) == keys.shape[0]

    def test_relation_input(self):
        rel = make_relation(1000, "random", seed=1)
        result = partitioned_groupby(rel, aggregate="count",
                                     num_partitions=16)
        assert int(result.values.sum()) == 1000

    def test_custom_partitioner(self, data):
        keys, values = data
        partitioner = FpgaPartitioner(
            PartitionerConfig(num_partitions=64, hash_kind=HashKind.RADIX)
        )
        result = partitioned_groupby(
            keys, values, partitioner=partitioner
        )
        assert result.num_partitions_used == 64
        expected = reference_groupby(keys, values, "sum")
        assert result.as_dict() == expected

    def test_unknown_aggregate(self, data):
        keys, values = data
        with pytest.raises(ConfigurationError):
            partitioned_groupby(keys, values, aggregate="median")

    def test_mismatched_values(self, data):
        keys, _ = data
        with pytest.raises(ConfigurationError):
            partitioned_groupby(keys, np.zeros(3, dtype=np.uint32))

    def test_sum_preserved_globally(self, data):
        keys, values = data
        result = partitioned_groupby(keys, values, num_partitions=32)
        assert int(result.values.sum()) == int(values.sum(dtype=np.int64))


class TestRangePartitioner:
    def test_partitions_are_key_ordered(self):
        keys = random_keys(20000, seed=2)
        out = RangePartitioner(num_partitions=16).partition(keys)
        previous_max = -1
        for p in range(16):
            p_keys = out.partition_keys[p]
            if p_keys.size == 0:
                continue
            assert int(p_keys.min()) >= previous_max
            previous_max = int(p_keys.max())

    def test_nothing_lost(self):
        keys = random_keys(5000, seed=3)
        out = RangePartitioner(num_partitions=8).partition(keys)
        assert out.counts.sum() == 5000
        collected = np.concatenate(out.partition_keys)
        assert sorted(map(int, collected)) == sorted(map(int, keys))

    def test_balanced_on_adversarial_keys(self):
        """The equi-depth splitters tame even reverse-grid keys —
        the distribution radix bits cannot handle."""
        keys = reverse_grid_keys(50000)
        out = RangePartitioner(num_partitions=64).partition(keys)
        fair = 50000 / 64
        assert out.counts.max() < 3 * fair
        assert (out.counts == 0).sum() < 8

    def test_payloads_follow_keys(self, rng):
        keys = random_keys(1000, seed=4)
        payloads = np.arange(1000, dtype=np.uint32)
        out = RangePartitioner(num_partitions=8).partition(keys, payloads)
        for p_keys, p_payloads in zip(
            out.partition_keys, out.partition_payloads
        ):
            for k, v in zip(p_keys, p_payloads):
                assert keys[int(v)] == k

    def test_splitters_sorted(self):
        keys = random_keys(10000, seed=5)
        partitioner = RangePartitioner(num_partitions=32)
        splitters = partitioner.choose_splitters(keys)
        assert splitters.shape == (31,)
        assert np.all(np.diff(splitters.astype(np.int64)) >= 0)

    def test_relation_input(self):
        rel = make_relation(2000, "linear")
        out = RangePartitioner(num_partitions=8).partition(rel)
        assert out.counts.sum() == 2000

    def test_small_input_uses_all_keys_as_sample(self):
        keys = np.arange(100, dtype=np.uint32)
        out = RangePartitioner(num_partitions=4, sample_size=1000).partition(
            keys
        )
        assert out.counts.sum() == 100
        assert out.counts.max() <= 35  # roughly equi-depth

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner(num_partitions=3)
        with pytest.raises(ConfigurationError):
            RangePartitioner(num_partitions=256, sample_size=10)
        with pytest.raises(ConfigurationError):
            RangePartitioner(num_partitions=4).partition(
                np.empty(0, dtype=np.uint32)
            )
