"""Tests for the distributed partition-and-exchange extension."""

import numpy as np
import pytest

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ConfigurationError
from repro.ops.distributed import DistributedPartitioner
from repro.workloads.relations import make_relation


@pytest.fixture
def cluster():
    return DistributedPartitioner(
        nodes=4, config=PartitionerConfig(num_partitions=64)
    )


@pytest.fixture
def relation():
    return make_relation(8000, "random", seed=21)


class TestSplitting:
    def test_split_covers_everything(self, cluster, relation):
        chunks = cluster.split_relation(relation)
        assert len(chunks) == 4
        assert sum(len(c) for c in chunks) == len(relation)
        collected = np.concatenate([c.keys for c in chunks])
        assert np.array_equal(collected, relation.keys)

    def test_ownership_round_robin(self, cluster):
        assert cluster.owner_of(0) == 0
        assert cluster.owner_of(5) == 1
        assert cluster.owner_of(63) == 3


class TestPlan:
    def test_matrix_accounts_every_byte(self, cluster, relation):
        chunks = cluster.split_relation(relation)
        plan = cluster.plan(chunks)
        assert plan.bytes_matrix.sum() == relation.total_bytes

    def test_balanced_exchange_for_hashed_keys(self, cluster, relation):
        chunks = cluster.split_relation(relation)
        plan = cluster.plan(chunks)
        assert plan.receive_imbalance < 1.3

    def test_exchange_time_scales_with_bandwidth(self, cluster, relation):
        chunks = cluster.split_relation(relation)
        plan = cluster.plan(chunks)
        assert plan.exchange_seconds(9.0) == pytest.approx(
            plan.exchange_seconds(4.5) / 2
        )
        with pytest.raises(ConfigurationError):
            plan.exchange_seconds(0)

    def test_wrong_chunk_count_rejected(self, cluster, relation):
        with pytest.raises(ConfigurationError):
            cluster.plan(cluster.split_relation(relation)[:2])

    def test_partition_counts_exposed(self, cluster, relation):
        """The plan carries the global per-partition histogram, which
        the cluster router's placement policy consumes as a skew
        signal."""
        chunks = cluster.split_relation(relation)
        plan = cluster.plan(chunks)
        assert plan.partition_counts is not None
        assert plan.partition_counts.shape == (64,)
        assert int(plan.partition_counts.sum()) == len(relation)
        single = FpgaPartitioner(cluster.config).partition(relation)
        assert np.array_equal(plan.partition_counts, single.counts)

    def test_all_local_plan_reports_flat_imbalance(self):
        """Regression: an all-local exchange (zero off-diagonal bytes)
        used to divide by a zero mean; it must report exactly 1.0 even
        under a strict numpy error state."""
        from repro.ops.distributed import ExchangePlan

        plan = ExchangePlan(
            nodes=3,
            bytes_matrix=np.diag([100, 200, 300]).astype(np.int64),
            partition_owner=np.arange(12, dtype=np.int64) % 3,
        )
        with np.errstate(all="raise"):
            assert plan.receive_imbalance == 1.0

    def test_feeds_router_placement(self, cluster, relation):
        """ExchangePlan skew metrics flow into ShardRouter placement."""
        from repro.cluster import ShardRouter

        plan = cluster.plan(cluster.split_relation(relation))
        router = ShardRouter(3, seed=0)
        router.observe_plan(plan)
        assert router.placement is not None
        assert 64 in router.placement._plan_counts
        assert router.placement._observed_imbalance == pytest.approx(
            plan.receive_imbalance
        )


class TestExecution:
    def test_exchange_equals_single_node_partitioning(self, cluster, relation):
        """The distributed result, reassembled, must equal partitioning
        the whole relation on one machine."""
        result = cluster.execute(cluster.split_relation(relation))
        single = FpgaPartitioner(cluster.config).partition(relation)
        for p in range(64):
            owner = cluster.owner_of(p)
            got = result.node_partition_keys[owner].get(
                p, np.empty(0, dtype=np.uint32)
            )
            assert sorted(map(int, got)) == sorted(
                map(int, single.partition_keys[p])
            ), f"partition {p}"

    def test_nodes_hold_disjoint_partitions(self, cluster, relation):
        result = cluster.execute(cluster.split_relation(relation))
        seen = set()
        for per_node in result.node_partition_keys:
            for p in per_node:
                assert p not in seen
                seen.add(p)

    def test_total_preserved(self, cluster, relation):
        result = cluster.execute(cluster.split_relation(relation))
        assert sum(
            result.node_tuples(n) for n in range(4)
        ) == len(relation)


class TestTiming:
    def test_partitioning_keeps_pace_with_the_link(self, cluster):
        """The paper's NIC-partitioner pitch: the FPGA partitions at
        the same order as the RDMA line rate (~3-4 GB/s vs 4.5 GB/s),
        so partition-while-sending overlaps cleanly rather than one
        side starving the other."""
        partition_s, exchange_s = cluster.estimate_seconds(128 * 10**6)
        assert partition_s < 3 * exchange_s
        assert exchange_s < 3 * partition_s

    def test_exchange_shrinks_with_cluster_share(self):
        two = DistributedPartitioner(
            2, PartitionerConfig(num_partitions=64)
        ).estimate_seconds(10**6)[1]
        eight = DistributedPartitioner(
            8, PartitionerConfig(num_partitions=64)
        ).estimate_seconds(10**6)[1]
        # a bigger cluster ships a larger fraction of its data
        assert eight > two


class TestValidation:
    def test_bad_cluster_sizes(self):
        with pytest.raises(ConfigurationError):
            DistributedPartitioner(0)
        with pytest.raises(ConfigurationError):
            DistributedPartitioner(
                128, PartitionerConfig(num_partitions=64)
            )

    def test_non_integer_nodes_rejected_up_front(self):
        # a float used to survive construction and die later inside
        # plan() with an opaque numpy TypeError
        with pytest.raises(ConfigurationError, match="integer"):
            DistributedPartitioner(2.5)
        with pytest.raises(ConfigurationError, match="integer"):
            DistributedPartitioner(True)

    def test_numpy_integer_nodes_accepted(self):
        cluster = DistributedPartitioner(
            np.int64(4), PartitionerConfig(num_partitions=64)
        )
        assert cluster.nodes == 4 and type(cluster.nodes) is int

    def test_bad_link_bandwidth_rejected_up_front(self):
        for bad in (0, -1.5):
            with pytest.raises(ConfigurationError, match="bandwidth"):
                DistributedPartitioner(
                    2, PartitionerConfig(num_partitions=64), link_gbs=bad
                )

    def test_chunk_count_mismatch(self, cluster, relation):
        chunks = cluster.split_relation(relation)
        with pytest.raises(ConfigurationError, match="chunks"):
            cluster.plan(chunks[:-1])
