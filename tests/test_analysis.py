"""Tests for the partition-balance analysis (Figure 3)."""

import numpy as np
import pytest

from repro.analysis.balance import balance_report
from repro.analysis.histogram import partition_cdf, partition_histogram
from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    grid_keys,
    linear_keys,
    random_keys,
    reverse_grid_keys,
)


class TestHistogram:
    def test_counts_sum_to_n(self):
        keys = random_keys(10000, seed=1)
        counts = partition_histogram(keys, 64, use_hash=True)
        assert counts.sum() == 10000
        assert counts.shape == (64,)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_histogram(np.empty(0, dtype=np.uint32), 64, True)


class TestCdf:
    def test_monotone_and_complete(self):
        counts = np.array([0, 5, 5, 10, 20])
        sizes, cumulative = partition_cdf(counts)
        assert list(sizes) == [0, 5, 10, 20]
        assert list(cumulative) == [1, 3, 4, 5]
        assert cumulative[-1] == counts.size

    def test_uniform_counts_single_step(self):
        sizes, cumulative = partition_cdf(np.full(100, 7))
        assert list(sizes) == [7]
        assert list(cumulative) == [100]


class TestBalanceReport:
    def test_uniform(self):
        report = balance_report(np.full(64, 100))
        assert report.is_balanced
        assert report.max_over_mean == 1.0
        assert report.empty_partitions == 0
        assert report.chi_square_normalised == 0.0

    def test_degenerate(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[0] = 6400
        report = balance_report(counts)
        assert not report.is_balanced
        assert report.max_over_mean == 64.0
        assert report.empty_partitions == 63

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            balance_report(np.empty(0))


class TestFigure3Property:
    """The paper's Figure 3 in assertion form: radix partitioning is
    grossly unbalanced on grid-family keys, hash partitioning is
    balanced on every distribution."""

    N = 200000
    PARTITIONS = 512

    def distributions(self):
        return {
            "linear": linear_keys(self.N),
            "random": random_keys(self.N, seed=2),
            "grid": grid_keys(self.N),
            "reverse_grid": reverse_grid_keys(self.N),
        }

    def test_hash_balanced_everywhere(self):
        for name, keys in self.distributions().items():
            counts = partition_histogram(keys, self.PARTITIONS, use_hash=True)
            report = balance_report(counts)
            assert report.is_balanced, name

    def test_radix_unbalanced_on_grid_family(self):
        for name in ("grid", "reverse_grid"):
            keys = self.distributions()[name]
            counts = partition_histogram(keys, self.PARTITIONS, use_hash=False)
            report = balance_report(counts)
            assert not report.is_balanced, name
            # grid leaves exactly half the radix partitions empty
            # (byte values are 1..128); reverse grid is far worse
            assert report.empty_partitions >= self.PARTITIONS // 2, name

    def test_radix_fine_on_linear(self):
        counts = partition_histogram(
            self.distributions()["linear"], self.PARTITIONS, use_hash=False
        )
        assert balance_report(counts).is_balanced

    def test_radix_much_worse_than_hash_by_chi_square(self):
        keys = self.distributions()["reverse_grid"]
        radix = balance_report(
            partition_histogram(keys, self.PARTITIONS, use_hash=False)
        )
        hashed = balance_report(
            partition_histogram(keys, self.PARTITIONS, use_hash=True)
        )
        assert radix.chi_square_normalised > 100 * max(
            hashed.chi_square_normalised, 1e-9
        )
