"""Tests for the top-level cycle-level circuit (Figure 5).

These verify the paper's architectural claims on real simulated clocks:
functional equivalence across all four modes, the no-internal-stall
property on adversarial inputs, steady-state throughput of one cache
line per cycle when the link allows it, and correct behaviour under
QPI back-pressure.
"""

import numpy as np
import pytest

from repro.core.circuit import PartitionerCircuit
from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.core.partitioner import FpgaPartitioner
from repro.errors import SimulationError
from tests.conftest import assert_same_partitions


def run_both(config, keys, payloads, **circuit_kwargs):
    circuit = PartitionerCircuit(config, **circuit_kwargs)
    if config.layout_mode is LayoutMode.VRID:
        sim = circuit.run(keys, None)
    else:
        sim = circuit.run(keys, payloads)
    func = FpgaPartitioner(config).partition(keys, payloads)
    return sim, func


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("output_mode", [OutputMode.PAD, OutputMode.HIST])
    @pytest.mark.parametrize("layout_mode", [LayoutMode.RID, LayoutMode.VRID])
    def test_modes_agree_with_functional(
        self, output_mode, layout_mode, small_keys, small_payloads
    ):
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=output_mode,
            layout_mode=layout_mode,
            pad_tuples=256,
        )
        sim, func = run_both(config, small_keys, small_payloads)
        assert_same_partitions(sim.partitions_keys, func.partition_keys)
        assert np.array_equal(sim.lines_per_partition, func.lines_per_partition)
        assert np.array_equal(sim.base_lines, func.base_lines)

    def test_radix_mode(self, small_keys, small_payloads):
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            hash_kind=HashKind.RADIX,
            pad_tuples=256,
        )
        sim, func = run_both(config, small_keys, small_payloads)
        assert_same_partitions(sim.partitions_keys, func.partition_keys)

    @pytest.mark.parametrize("tuple_bytes", [16, 32, 64])
    def test_wider_tuples(self, tuple_bytes, rng):
        keys = rng.integers(0, 2**32, size=200, dtype=np.uint64).astype(
            np.uint32
        )
        payloads = np.arange(200, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=8,
            tuple_bytes=tuple_bytes,
            output_mode=OutputMode.HIST,
        )
        sim, func = run_both(config, keys, payloads)
        assert_same_partitions(sim.partitions_keys, func.partition_keys)
        assert np.array_equal(sim.lines_per_partition, func.lines_per_partition)

    def test_payloads_follow_their_keys(self, small_keys, small_payloads):
        config = PartitionerConfig(num_partitions=8, output_mode=OutputMode.HIST)
        sim = PartitionerCircuit(config).run(small_keys, small_payloads)
        pairs_in = dict(zip(map(int, small_keys), map(int, small_payloads)))
        for p_keys, p_payloads in zip(
            sim.partitions_keys, sim.partitions_payloads
        ):
            for k, v in zip(p_keys, p_payloads):
                assert pairs_in[int(k)] == int(v)


class TestNoStallClaim:
    def test_single_partition_burst_no_stalls(self):
        """The adversarial input for the forwarding logic: every tuple
        goes to the same partition.  The claim: no internal stalls
        'regardless of input type'."""
        keys = np.full(512, 16, dtype=np.uint32)  # all -> one partition
        payloads = np.arange(512, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            hash_kind=HashKind.RADIX,
            pad_tuples=1024,
        )
        sim = PartitionerCircuit(config).run(keys, payloads)
        assert sim.stats.combiner_stall_cycles == 0
        assert sim.stats.writeback_stall_cycles == 0
        assert sum(len(k) for k in sim.partitions_keys) == 512

    def test_alternating_partitions_no_stalls(self):
        keys = np.tile(np.array([3, 7], dtype=np.uint32), 256)
        payloads = np.arange(512, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            hash_kind=HashKind.RADIX,
            pad_tuples=1024,
        )
        sim = PartitionerCircuit(config).run(keys, payloads)
        assert sim.stats.combiner_stall_cycles == 0
        counts = [len(k) for k in sim.partitions_keys]
        assert counts[3] == 256 and counts[7] == 256


class TestThroughput:
    def test_one_line_per_cycle_unthrottled(self, rng):
        """Without a bandwidth cap, the streaming portion must approach
        one input line per clock cycle (Section 4's headline claim)."""
        n = 2048
        keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
            np.uint32
        )
        payloads = np.arange(n, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=512
        )
        sim = PartitionerCircuit(config).run(keys, payloads)
        lines_in = n // 8
        streaming_cycles = sim.stats.partition_pass_cycles - sim.stats.flush_cycles
        # pipeline fill + read latency add a small constant
        assert streaming_cycles < lines_in + 80

    def test_hist_costs_a_second_pass(self, small_keys, small_payloads):
        pad = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=256
        )
        hist = PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        sim_pad = PartitionerCircuit(pad).run(small_keys, small_payloads)
        sim_hist = PartitionerCircuit(hist).run(small_keys, small_payloads)
        assert sim_hist.stats.histogram_pass_cycles > 0
        assert sim_hist.stats.cycles > sim_pad.stats.cycles

    def test_backpressure_slows_but_preserves_data(self, rng):
        n = 1024
        keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
            np.uint32
        )
        payloads = np.arange(n, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=512
        )
        free = PartitionerCircuit(config).run(keys, payloads)
        slow = PartitionerCircuit(config, qpi_bandwidth_gbs=6.5).run(
            keys, payloads
        )
        assert slow.stats.cycles > free.stats.cycles
        assert slow.stats.input_backpressure_cycles > 0
        assert_same_partitions(slow.partitions_keys, free.partitions_keys)

    def test_vrid_reads_half_the_lines(self, rng):
        n = 1024
        keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
            np.uint32
        )
        rid = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=512
        )
        vrid = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.VRID,
            pad_tuples=512,
        )
        sim_rid = PartitionerCircuit(rid).run(keys, np.arange(n, dtype=np.uint32))
        sim_vrid = PartitionerCircuit(vrid).run(keys, None)
        assert sim_vrid.stats.lines_in * 2 == sim_rid.stats.lines_in


class TestSafetyRails:
    def test_max_cycles_guard(self, small_keys, small_payloads):
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=256
        )
        with pytest.raises(SimulationError, match="livelock"):
            PartitionerCircuit(config).run(
                small_keys, small_payloads, max_cycles=10
            )

    def test_vrid_rejects_payloads(self, small_keys, small_payloads):
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.VRID,
        )
        with pytest.raises(SimulationError):
            PartitionerCircuit(config).run(small_keys, small_payloads)

    def test_rid_requires_payloads(self, small_keys):
        config = PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        with pytest.raises(SimulationError):
            PartitionerCircuit(config).run(small_keys, None)

    def test_forwarding_disabled_corrupts_end_to_end(self):
        """The ablation: without forwarding registers the circuit
        produces wrong partitions on bursty input."""
        keys = np.full(256, 5, dtype=np.uint32)
        payloads = np.arange(256, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            hash_kind=HashKind.RADIX,
            pad_tuples=512,
        )
        sim = PartitionerCircuit(config, enable_forwarding=False).run(
            keys, payloads
        )
        out_payloads = sorted(
            int(v) for p in sim.partitions_payloads for v in p
        )
        # corruption shows as lost and/or duplicated tuples
        assert out_payloads != list(range(256))
