"""Tests for the Table 2 resource model."""

import pytest

from repro.core.modes import HashKind, PartitionerConfig
from repro.core.resources import (
    TABLE2_PUBLISHED,
    estimate_resources,
    max_partitions,
    table2_estimates,
)


class TestTable2Fit:
    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_within_tolerance_of_published(self, width):
        estimate = estimate_resources(
            PartitionerConfig(num_partitions=8192, tuple_bytes=width)
        )
        published = TABLE2_PUBLISHED[width]
        assert estimate.logic_percent == pytest.approx(
            published["logic"], abs=3.0
        )
        assert estimate.bram_percent == pytest.approx(published["bram"], abs=3.0)
        assert estimate.dsp_percent == pytest.approx(published["dsp"], abs=2.0)

    def test_bram_monotonically_decreasing(self):
        estimates = table2_estimates()
        brams = [estimates[w].bram_percent for w in (8, 16, 32, 64)]
        assert brams == sorted(brams, reverse=True)

    def test_logic_decreases_then_floors(self):
        estimates = table2_estimates()
        logic = [estimates[w].logic_percent for w in (8, 16, 32, 64)]
        assert logic[0] > logic[1] >= logic[2] == logic[3]

    def test_dsp_peaks_at_16b(self):
        """The paper's callout: DSPs *increase* from 8 B to 16 B (the
        hash moves to 8 B keys) then drop as lanes halve."""
        estimates = table2_estimates()
        dsp = {w: estimates[w].dsp_percent for w in (8, 16, 32, 64)}
        assert dsp[16] > dsp[8]
        assert dsp[16] > dsp[32] > dsp[64]


class TestModelBehaviour:
    def test_radix_frees_hash_dsps(self):
        murmur = estimate_resources(
            PartitionerConfig(num_partitions=8192, hash_kind=HashKind.MURMUR)
        )
        radix = estimate_resources(
            PartitionerConfig(num_partitions=8192, hash_kind=HashKind.RADIX)
        )
        assert radix.dsp_percent < murmur.dsp_percent

    def test_bram_scales_with_partitions(self):
        small = estimate_resources(PartitionerConfig(num_partitions=1024))
        large = estimate_resources(PartitionerConfig(num_partitions=8192))
        assert large.bram_percent > small.bram_percent

    def test_percentages_capped(self):
        huge = estimate_resources(PartitionerConfig(num_partitions=2**17))
        assert huge.bram_percent <= 100.0

    def test_as_dict(self):
        usage = estimate_resources(PartitionerConfig())
        d = usage.as_dict()
        assert set(d) == {"logic", "bram", "dsp"}


class TestMaxFanout:
    def test_8b_caps_at_the_papers_8192(self):
        """The paper evaluates at 8192 partitions — which the resource
        model shows is exactly the largest fan-out the Stratix V's
        BRAM can hold for 8 B tuples.  The design is sized to the chip."""
        assert max_partitions(8) == 8192

    def test_wider_tuples_allow_larger_fanouts(self):
        caps = [max_partitions(w) for w in (8, 16, 32, 64)]
        assert caps == sorted(caps)
        assert caps[-1] == 8 * caps[0]  # slot bytes/partition halve per step

    def test_cap_fits_and_next_doubling_does_not(self):
        cap = max_partitions(8)
        fits = estimate_resources(PartitionerConfig(num_partitions=cap))
        overflows = estimate_resources(
            PartitionerConfig(num_partitions=2 * cap)
        )
        assert fits.bram_percent < 100.0
        assert overflows.bram_percent >= 100.0
