"""Tests for the shared memory pool (Section 2.1)."""

import numpy as np
import pytest

from repro.constants import PAGE_BYTES
from repro.errors import ConfigurationError, MemoryError_
from repro.platform.memory import SharedMemory


@pytest.fixture
def pool():
    # a small pool so tests stay cheap: 16 pages of 4 MB
    return SharedMemory(total_bytes=16 * PAGE_BYTES)


class TestAllocation:
    def test_rounds_up_to_pages(self, pool):
        region = pool.allocate("r", 1000)
        assert region.size_bytes == PAGE_BYTES

    def test_multi_page_region(self, pool):
        region = pool.allocate("r", PAGE_BYTES + 1)
        assert region.size_bytes == 2 * PAGE_BYTES
        assert len(region.frames) == 2

    def test_virtual_addresses_contiguous(self, pool):
        a = pool.allocate("a", PAGE_BYTES)
        b = pool.allocate("b", PAGE_BYTES)
        assert b.virtual_base == a.virtual_end

    def test_out_of_memory(self, pool):
        with pytest.raises(MemoryError_):
            pool.allocate("big", 17 * PAGE_BYTES)

    def test_duplicate_names_rejected(self, pool):
        pool.allocate("r", 100)
        with pytest.raises(MemoryError_):
            pool.allocate("r", 100)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_sizes(self, pool, bad):
        with pytest.raises(ConfigurationError):
            pool.allocate("r", bad)

    def test_physical_pages_aligned(self, pool):
        region = pool.allocate("r", 3 * PAGE_BYTES)
        for physical in region.physical_page_addresses():
            assert physical % PAGE_BYTES == 0


class TestTranslation:
    def test_cpu_side_translation(self, pool):
        region = pool.allocate("r", 2 * PAGE_BYTES)
        assert region.physical_address(0) == region.frames[0].physical_base
        assert (
            region.physical_address(PAGE_BYTES)
            == region.frames[1].physical_base
        )
        assert (
            region.physical_address(PAGE_BYTES + 7)
            == region.frames[1].physical_base + 7
        )

    def test_out_of_region_offset(self, pool):
        region = pool.allocate("r", PAGE_BYTES)
        with pytest.raises(MemoryError_):
            region.physical_address(PAGE_BYTES)
        with pytest.raises(MemoryError_):
            region.physical_address(-1)


class TestDataPlane:
    def test_write_read_roundtrip(self, pool, rng):
        region = pool.allocate("r", PAGE_BYTES)
        data = rng.integers(0, 256, size=1024, dtype=np.uint8)
        region.write_bytes(100, data)
        assert np.array_equal(region.read_bytes(100, 1024), data)

    def test_span_across_pages(self, pool, rng):
        region = pool.allocate("r", 2 * PAGE_BYTES)
        data = rng.integers(0, 256, size=4096, dtype=np.uint8)
        offset = PAGE_BYTES - 2048  # straddles the page boundary
        region.write_bytes(offset, data)
        assert np.array_equal(region.read_bytes(offset, 4096), data)

    def test_write_escaping_region_rejected(self, pool):
        region = pool.allocate("r", PAGE_BYTES)
        with pytest.raises(MemoryError_):
            region.write_bytes(
                PAGE_BYTES - 10, np.zeros(100, dtype=np.uint8)
            )

    def test_unwritten_memory_reads_zero(self, pool):
        region = pool.allocate("r", PAGE_BYTES)
        assert int(region.read_bytes(0, 64).sum()) == 0

    def test_physical_page_boundary_enforced(self, pool):
        pool.allocate("r", PAGE_BYTES)
        with pytest.raises(MemoryError_):
            pool.read_physical(PAGE_BYTES - 10, 100)

    def test_lazy_page_materialisation(self, pool):
        region = pool.allocate("r", 8 * PAGE_BYTES)
        assert len(pool._page_data) == 0
        region.write_bytes(0, np.ones(16, dtype=np.uint8))
        assert len(pool._page_data) == 1


class TestGeometryValidation:
    def test_non_page_multiple_total(self):
        with pytest.raises(ConfigurationError):
            SharedMemory(total_bytes=PAGE_BYTES + 1)

    def test_allocated_bytes_tracked(self, pool):
        pool.allocate("a", PAGE_BYTES)
        pool.allocate("b", 2 * PAGE_BYTES)
        assert pool.allocated_bytes == 3 * PAGE_BYTES
