"""Tests for the cycle-accurate FIFO model."""

import pytest

from repro.core.fifo import Fifo
from repro.errors import ConfigurationError, FifoOverflowError, FifoUnderflowError


class TestFifoBasics:
    def test_fifo_order(self):
        fifo = Fifo(4)
        for i in range(4):
            fifo.push(i)
        assert [fifo.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_len_and_free_slots(self):
        fifo = Fifo(3)
        assert len(fifo) == 0 and fifo.free_slots == 3
        fifo.push("a")
        assert len(fifo) == 1 and fifo.free_slots == 2

    def test_empty_full_flags(self):
        fifo = Fifo(1)
        assert fifo.is_empty() and not fifo.is_full()
        fifo.push(1)
        assert fifo.is_full() and not fifo.is_empty()

    def test_peek_is_nondestructive(self):
        fifo = Fifo(2)
        fifo.push("x")
        assert fifo.peek() == "x"
        assert len(fifo) == 1

    def test_peek_empty_returns_none(self):
        assert Fifo(1).peek() is None


class TestFifoErrors:
    def test_overflow_raises(self):
        fifo = Fifo(1, name="t")
        fifo.push(1)
        with pytest.raises(FifoOverflowError, match="back-pressure"):
            fifo.push(2)

    def test_underflow_raises(self):
        with pytest.raises(FifoUnderflowError):
            Fifo(1).pop()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_capacity(self, bad):
        with pytest.raises(ConfigurationError):
            Fifo(bad)


class TestFifoStats:
    def test_counters(self):
        fifo = Fifo(8)
        for i in range(5):
            fifo.push(i)
        fifo.pop()
        fifo.push(5)
        assert fifo.total_pushed == 6
        assert fifo.total_popped == 1
        assert fifo.max_occupancy == 5
