"""Tests for the build+probe kernel and its cost model."""

import numpy as np
import pytest

from repro.constants import BP_CACHE_BUDGET_BYTES
from repro.errors import ConfigurationError
from repro.join.build_probe import BuildProbeCostModel, build_probe_partition


class TestKernel:
    def test_simple_join(self):
        r_keys = np.array([1, 2, 3], dtype=np.uint32)
        r_pay = np.array([10, 20, 30], dtype=np.uint32)
        s_keys = np.array([2, 3, 4], dtype=np.uint32)
        s_pay = np.array([200, 300, 400], dtype=np.uint32)
        count, rp, sp, _ = build_probe_partition(r_keys, r_pay, s_keys, s_pay)
        assert count == 2
        pairs = sorted(zip(map(int, rp), map(int, sp)))
        assert pairs == [(20, 200), (30, 300)]

    def test_count_only_mode(self):
        r = np.array([1], dtype=np.uint32)
        s = np.array([1, 1], dtype=np.uint32)
        count, rp, sp, _ = build_probe_partition(
            r, r, s, s, collect_payloads=False
        )
        assert count == 2
        assert rp is None and sp is None

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.uint32)
        keys = np.array([1], dtype=np.uint32)
        assert build_probe_partition(empty, empty, keys, keys)[0] == 0
        assert build_probe_partition(keys, keys, empty, empty)[0] == 0


class TestCostModel:
    @pytest.fixture
    def model(self):
        return BuildProbeCostModel()

    def test_in_cache_no_penalty(self, model):
        assert model.cache_penalty(BP_CACHE_BUDGET_BYTES) == 1.0
        assert model.cache_penalty(1024) == 1.0

    def test_penalty_grows_per_doubling(self, model):
        one = model.cache_penalty(2 * BP_CACHE_BUDGET_BYTES)
        two = model.cache_penalty(4 * BP_CACHE_BUDGET_BYTES)
        assert 1.0 < one < two

    def test_more_partitions_faster_build_probe(self, model):
        """Figure 10: splitting finer brings partitions into cache."""
        n = 128 * 10**6
        coarse = model.estimate(n, n, num_partitions=256, threads=1)
        fine = model.estimate(n, n, num_partitions=8192, threads=1)
        assert fine.total_seconds < coarse.total_seconds

    def test_thread_scaling(self, model):
        n = 128 * 10**6
        one = model.estimate(n, n, 8192, threads=1)
        ten = model.estimate(n, n, 8192, threads=10)
        assert ten.total_seconds == pytest.approx(
            one.total_seconds / 10, rel=0.01
        )

    def test_skew_bounds_scaling(self, model):
        """A dominant partition caps parallel speedup (Figure 13)."""
        n = 128 * 10**6
        balanced = model.estimate(n, n, 8192, threads=10)
        skewed = model.estimate(
            n, n, 8192, threads=10, max_partition_share=0.5
        )
        assert skewed.total_seconds > 4 * balanced.total_seconds

    def test_coherence_penalty_applied(self, model):
        """Section 2.2: build+probe after FPGA partitioning is always
        slower."""
        n = 128 * 10**6
        cpu = model.estimate(n, n, 8192, threads=10, fpga_partitioned=False)
        fpga = model.estimate(n, n, 8192, threads=10, fpga_partitioned=True)
        assert fpga.total_seconds > cpu.total_seconds
        assert fpga.probe_seconds > 2 * cpu.probe_seconds  # random reads
        assert fpga.build_seconds < 1.3 * cpu.build_seconds  # sequential

    def test_workload_a_anchor(self, model):
        """CPU join on workload A at 10 threads: partition (0.506 s) +
        build+probe must land the join at ~436 Mtuples/s (Section 5.2)."""
        n = 128 * 10**6
        bp = model.estimate(n, n, 8192, threads=10)
        total = 2 * n / 506e6 + bp.total_seconds
        throughput = 2 * n / total / 1e6
        assert throughput == pytest.approx(436, rel=0.03)

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.estimate(10, 10, 8192, threads=0)
        with pytest.raises(ConfigurationError):
            model.estimate(10, 10, 0)
