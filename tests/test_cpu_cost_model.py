"""Tests for the CPU partitioning cost model (Figure 4 shapes)."""

import pytest

from repro.core.modes import HashKind
from repro.cpu.cost_model import CpuCostModel
from repro.errors import ConfigurationError
from repro.workloads.distributions import KeyDistribution


@pytest.fixture
def model():
    return CpuCostModel()


class TestMemoryCeiling:
    def test_10_thread_anchor(self, model):
        """Figure 9: the 10-thread CPU partitioner reaches ~506
        Mtuples/s for 8 B tuples."""
        rate = model.estimate(10, HashKind.RADIX).tuples_per_second
        assert rate == pytest.approx(506e6, rel=0.03)

    def test_ceiling_independent_of_hash(self, model):
        radix = model.memory_bound_rate(8)
        assert radix == model.memory_bound_rate(8)

    def test_wider_tuples_lower_ceiling(self, model):
        assert model.memory_bound_rate(16) < model.memory_bound_rate(8)

    def test_interference_lowers_ceiling(self, model):
        assert model.memory_bound_rate(8, interfered=True) < \
            model.memory_bound_rate(8)


class TestFigure4Shapes:
    def test_radix_faster_single_threaded(self, model):
        """Hash partitioning costs up to ~50% more time at 1 thread
        (Section 5.3)."""
        radix = model.estimate(1, HashKind.RADIX).tuples_per_second
        hash_ = model.estimate(1, HashKind.MURMUR).tuples_per_second
        assert radix / hash_ == pytest.approx(1.5, abs=0.1)

    def test_parity_at_ten_threads(self, model):
        """'the throughput slowdown observed with few threads
        disappears' — both saturate the memory ceiling."""
        radix = model.estimate(10, HashKind.RADIX).tuples_per_second
        hash_ = model.estimate(10, HashKind.MURMUR).tuples_per_second
        assert radix == pytest.approx(hash_, rel=0.01)

    def test_linear_scaling_before_saturation(self, model):
        one = model.estimate(1, HashKind.MURMUR).tuples_per_second
        two = model.estimate(2, HashKind.MURMUR).tuples_per_second
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_memory_bound_flag_flips(self, model):
        assert not model.estimate(1, HashKind.RADIX).memory_bound
        assert model.estimate(10, HashKind.RADIX).memory_bound

    def test_radix_degrades_on_grid_distributions(self, model):
        linear = model.estimate(
            1, HashKind.RADIX, KeyDistribution.LINEAR
        ).tuples_per_second
        rev_grid = model.estimate(
            1, HashKind.RADIX, KeyDistribution.REVERSE_GRID
        ).tuples_per_second
        assert rev_grid < linear

    def test_hash_is_distribution_blind(self, model):
        """Figure 4: 'hash partitioning delivers for every key
        distribution the same throughput'."""
        rates = {
            model.estimate(4, HashKind.MURMUR, d).tuples_per_second
            for d in (
                KeyDistribution.LINEAR,
                KeyDistribution.RANDOM,
                KeyDistribution.GRID,
                KeyDistribution.REVERSE_GRID,
            )
        }
        assert len(rates) == 1


class TestFanoutEffect:
    def test_single_thread_slower_with_more_partitions(self, model):
        """Figure 10a: more partitions, more single-thread partitioning
        time."""
        few = model.estimate(
            1, HashKind.RADIX, num_partitions=256
        ).tuples_per_second
        many = model.estimate(
            1, HashKind.RADIX, num_partitions=8192
        ).tuples_per_second
        assert few > many

    def test_10_threads_insensitive_to_partitions(self, model):
        """Figure 10b: the 10-thread partitioner is memory bound, so
        'the performance remains the same across all the number of
        partitions'."""
        few = model.estimate(
            10, HashKind.RADIX, num_partitions=256
        ).tuples_per_second
        many = model.estimate(
            10, HashKind.RADIX, num_partitions=8192
        ).tuples_per_second
        assert few == pytest.approx(many, rel=0.01)


class TestApi:
    def test_seconds_scale_with_input(self, model):
        t1 = model.partitioning_seconds(10**6, 4)
        t2 = model.partitioning_seconds(2 * 10**6, 4)
        assert t2 == pytest.approx(2 * t1)

    def test_invalid_threads(self, model):
        with pytest.raises(ConfigurationError):
            model.estimate(0, HashKind.RADIX)

    def test_string_enums_accepted(self, model):
        rate = model.estimate(2, "murmur", "grid").tuples_per_second
        assert rate > 0

    def test_throughput_helper(self, model):
        assert model.throughput_mtuples(10) == pytest.approx(506, rel=0.03)


class TestDegenerateInputs:
    """Degenerate inputs the adaptive optimizer now leans on: raise
    ConfigurationError or answer exactly, never divide by zero / NaN."""

    def test_zero_and_negative_threads_raise(self, model):
        for threads in (0, -1, -10):
            with pytest.raises(ConfigurationError):
                model.estimate(threads, HashKind.RADIX)
            with pytest.raises(ConfigurationError):
                model.compute_bound_rate(threads, HashKind.RADIX)

    def test_zero_and_negative_fanout_raise(self, model):
        for fanout in (0, -1, -256):
            with pytest.raises(ConfigurationError):
                model.estimate(2, HashKind.RADIX, num_partitions=fanout)
            with pytest.raises(ConfigurationError):
                model.compute_bound_rate(
                    2, HashKind.RADIX, num_partitions=fanout
                )

    def test_invalid_tuple_bytes_raise(self, model):
        with pytest.raises(ConfigurationError):
            model.memory_bound_rate(0)
        with pytest.raises(ConfigurationError):
            model.estimate(2, HashKind.RADIX, tuple_bytes=-8)

    def test_seconds_for_zero_tuples_is_zero(self, model):
        estimate = model.estimate(4, HashKind.RADIX)
        assert estimate.seconds_for(0) == 0.0

    def test_seconds_for_zero_with_zero_rate_is_zero(self):
        """A 0-rate estimate must not turn seconds_for(0) into NaN."""
        import dataclasses

        estimate = dataclasses.replace(
            CpuCostModel().estimate(1, HashKind.RADIX),
            tuples_per_second=0.0,
        )
        result = estimate.seconds_for(0)
        assert result == 0.0 and result == result  # not NaN

    def test_seconds_for_rejects_negative(self, model):
        estimate = model.estimate(4, HashKind.RADIX)
        with pytest.raises(ConfigurationError):
            estimate.seconds_for(-1)

    def test_partitioning_seconds_zero_tuples(self, model):
        assert model.partitioning_seconds(0, 4) == 0.0
