"""Tests for the bucket-chaining hash table ([21])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.join.hash_table import BucketChainingHashTable


class TestBuild:
    def test_power_of_two_buckets(self):
        table = BucketChainingHashTable(np.arange(10, dtype=np.uint32))
        assert table.num_buckets == 16

    def test_explicit_buckets_validated(self):
        with pytest.raises(ConfigurationError):
            BucketChainingHashTable(
                np.arange(4, dtype=np.uint32), num_buckets=3
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketChainingHashTable(np.empty(0, dtype=np.uint32))

    def test_chains_cover_all_tuples(self, rng):
        keys = rng.integers(0, 1000, size=200, dtype=np.uint64).astype(
            np.uint32
        )
        table = BucketChainingHashTable(keys)
        visited = set()
        for head in table.heads:
            cursor = int(head)
            while cursor != -1:
                assert cursor not in visited
                visited.add(cursor)
                cursor = int(table.next[cursor])
        assert visited == set(range(200))


class TestProbe:
    def test_unique_keys_single_match(self):
        keys = np.array([5, 9, 13, 2], dtype=np.uint32)
        table = BucketChainingHashTable(keys)
        probe_idx, build_idx, _ = table.probe(np.array([13, 5], dtype=np.uint32))
        got = {int(p): int(b) for p, b in zip(probe_idx, build_idx)}
        assert got == {0: 2, 1: 0}

    def test_missing_keys_no_match(self):
        table = BucketChainingHashTable(np.array([1, 2, 3], dtype=np.uint32))
        probe_idx, build_idx, _ = table.probe(
            np.array([100, 200], dtype=np.uint32)
        )
        assert probe_idx.size == 0

    def test_duplicate_build_keys_all_matched(self):
        keys = np.array([7, 7, 7, 9], dtype=np.uint32)
        table = BucketChainingHashTable(keys)
        probe_idx, build_idx, _ = table.probe(np.array([7], dtype=np.uint32))
        assert probe_idx.size == 3
        assert sorted(map(int, build_idx)) == [0, 1, 2]

    def test_duplicate_probe_keys(self):
        table = BucketChainingHashTable(np.array([4], dtype=np.uint32))
        probe_idx, _, _ = table.probe(np.array([4, 4, 4], dtype=np.uint32))
        assert probe_idx.size == 3

    def test_empty_probe(self):
        table = BucketChainingHashTable(np.array([1], dtype=np.uint32))
        probe_idx, build_idx, hops = table.probe(np.empty(0, dtype=np.uint32))
        assert probe_idx.size == 0 and hops == 0

    def test_vector_matches_scalar_walk(self, rng):
        keys = rng.integers(0, 50, size=100, dtype=np.uint64).astype(np.uint32)
        table = BucketChainingHashTable(keys)
        probes = rng.integers(0, 60, size=40, dtype=np.uint64).astype(np.uint32)
        probe_idx, build_idx, _ = table.probe(probes)
        vector_pairs = set(zip(map(int, probe_idx), map(int, build_idx)))
        scalar_pairs = set()
        for i, key in enumerate(probes):
            for match in table.probe_scalar(int(key)):
                scalar_pairs.add((i, match))
        assert vector_pairs == scalar_pairs

    def test_chain_hops_counted(self):
        keys = np.array([1, 2, 3, 4], dtype=np.uint32)
        table = BucketChainingHashTable(keys)
        _, _, hops = table.probe(keys)
        assert hops >= 4  # at least one hop per probe that hits a chain

    @given(
        st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=60
        ),
        st.lists(
            st.integers(min_value=0, max_value=40), min_size=0, max_size=60
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_dictionary_reference(self, build, probe):
        """Property: the table finds exactly the pairs a reference
        dict-of-lists join finds."""
        build_arr = np.array(build, dtype=np.uint32)
        probe_arr = np.array(probe, dtype=np.uint32)
        table = BucketChainingHashTable(build_arr)
        probe_idx, build_idx, _ = table.probe(probe_arr)
        got = sorted(zip(map(int, probe_idx), map(int, build_idx)))
        reference = {}
        for i, key in enumerate(build):
            reference.setdefault(key, []).append(i)
        expected = sorted(
            (i, j)
            for i, key in enumerate(probe)
            for j in reference.get(key, ())
        )
        assert got == expected


class TestChainStats:
    def test_max_chain_length(self):
        keys = np.array([1, 1, 1, 1], dtype=np.uint32)
        table = BucketChainingHashTable(keys)
        assert table.max_chain_length == 4
