"""Tests for the CPU partitioning implementations (Section 3)."""

import numpy as np
import pytest

from repro.core.modes import HashKind, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.cpu.naive import naive_partition
from repro.cpu.partitioner import CpuPartitioner
from repro.cpu.swwc_buffers import swwc_partition
from repro.errors import ConfigurationError
from tests.conftest import assert_same_partitions


class TestSwwcPartitioning:
    def test_nothing_lost(self, small_keys, small_payloads):
        keys_out, payloads_out, counts, _ = swwc_partition(
            small_keys, small_payloads, 16, use_hash=True
        )
        assert counts.sum() == small_keys.shape[0]
        collected = sorted(
            int(v) for arr in payloads_out for v in arr
        )
        assert collected == list(range(small_keys.shape[0]))

    def test_matches_naive(self, small_keys, small_payloads):
        swwc_keys, _, _, _ = swwc_partition(
            small_keys, small_payloads, 16, use_hash=True
        )
        naive_keys, _, _, _ = naive_partition(
            small_keys, small_payloads, 16, use_hash=True
        )
        assert_same_partitions(swwc_keys, naive_keys)

    @pytest.mark.parametrize("threads", [1, 2, 4, 10])
    def test_thread_count_invariant_multisets(
        self, threads, small_keys, small_payloads
    ):
        single, _, counts1, _ = swwc_partition(
            small_keys, small_payloads, 16, use_hash=True, threads=1
        )
        multi, _, countsn, _ = swwc_partition(
            small_keys, small_payloads, 16, use_hash=True, threads=threads
        )
        assert np.array_equal(counts1, countsn)
        assert_same_partitions(single, multi)

    def test_thread_order_within_partition(self):
        """Thread 0's tuples precede thread 1's within each partition —
        the layout the two-level prefix sum produces."""
        keys = np.array([0, 0, 0, 0], dtype=np.uint32)
        payloads = np.array([10, 11, 20, 21], dtype=np.uint32)
        _, payloads_out, _, _ = swwc_partition(
            keys, payloads, 2, use_hash=False, threads=2
        )
        assert list(payloads_out[0]) == [10, 11, 20, 21]

    def test_single_thread_preserves_input_order(self):
        keys = np.array([2, 0, 2, 0], dtype=np.uint32)
        payloads = np.array([0, 1, 2, 3], dtype=np.uint32)
        _, payloads_out, _, _ = swwc_partition(
            keys, payloads, 4, use_hash=False, threads=1
        )
        assert list(payloads_out[0]) == [1, 3]
        assert list(payloads_out[2]) == [0, 2]

    def test_buffer_flush_accounting(self):
        keys = np.zeros(20, dtype=np.uint32)  # one partition, 20 tuples
        payloads = np.arange(20, dtype=np.uint32)
        _, _, _, stats = swwc_partition(
            keys, payloads, 4, use_hash=False, buffer_tuples=8
        )
        assert stats.full_buffer_flushes == 2   # 16 tuples
        assert stats.partial_buffer_flushes == 1  # final 4
        assert stats.tuples_written == 20
        assert stats.non_temporal_bytes == 20 * 8

    def test_more_threads_than_tuples(self):
        keys = np.array([1, 2], dtype=np.uint32)
        payloads = np.array([0, 1], dtype=np.uint32)
        _, _, counts, _ = swwc_partition(
            keys, payloads, 4, use_hash=False, threads=8
        )
        assert counts.sum() == 2

    def test_invalid_threads(self, small_keys, small_payloads):
        with pytest.raises(ConfigurationError):
            swwc_partition(small_keys, small_payloads, 16, threads=0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            swwc_partition(
                np.zeros(3, dtype=np.uint32),
                np.zeros(2, dtype=np.uint32),
                4,
            )


class TestNaiveTrafficClaim:
    def test_16x_write_combining_gain_for_8b(self, small_keys, small_payloads):
        """Section 4.2's arithmetic: (64+64) bytes per tuple without
        combining vs 8 bytes with it."""
        _, _, _, stats = naive_partition(
            small_keys, small_payloads, 16, tuple_bytes=8
        )
        assert stats.write_combining_gain == pytest.approx(16.0)

    def test_gain_shrinks_for_wide_tuples(self, small_keys, small_payloads):
        _, _, _, stats = naive_partition(
            small_keys, small_payloads, 16, tuple_bytes=64
        )
        assert stats.write_combining_gain == pytest.approx(2.0)


class TestCpuPartitionerApi:
    def test_counts_match_fpga_same_hash(self, small_keys, small_payloads):
        cpu = CpuPartitioner(
            num_partitions=32, hash_kind=HashKind.MURMUR
        ).partition(small_keys, small_payloads)
        fpga = FpgaPartitioner(
            PartitionerConfig(num_partitions=32)
        ).partition(small_keys, small_payloads)
        assert np.array_equal(cpu.counts, fpga.counts)
        assert_same_partitions(cpu.partition_keys, fpga.partition_keys)

    def test_no_dummy_padding(self, small_keys, small_payloads):
        out = CpuPartitioner(num_partitions=16).partition(
            small_keys, small_payloads
        )
        assert out.dummy_slots == 0
        assert out.padding_fraction == 0.0

    def test_traffic_is_three_scans(self, small_keys, small_payloads):
        out = CpuPartitioner(num_partitions=16).partition(
            small_keys, small_payloads
        )
        n = small_keys.shape[0]
        assert out.bytes_read == 2 * n * 8
        assert out.bytes_written == n * 8

    def test_produced_by(self, small_keys, small_payloads):
        out = CpuPartitioner(num_partitions=16).partition(
            small_keys, small_payloads
        )
        assert out.produced_by == "cpu"

    def test_matching_config(self):
        config = PartitionerConfig(num_partitions=256, hash_kind=HashKind.RADIX)
        cpu = CpuPartitioner.matching(config)
        assert cpu.num_partitions == 256
        assert cpu.hash_kind is HashKind.RADIX

    def test_estimate_seconds_positive(self):
        cpu = CpuPartitioner(num_partitions=8192, threads=10)
        assert cpu.estimate_seconds(128 * 10**6) > 0


class TestMultipassRadix:
    @pytest.mark.parametrize("passes", [1, 2, 3])
    def test_equals_single_pass(self, passes, small_keys, small_payloads):
        cpu = CpuPartitioner(num_partitions=64, hash_kind=HashKind.RADIX)
        single = cpu.partition(small_keys, small_payloads)
        multi_keys, multi_payloads, counts, _ = cpu.multipass_radix(
            small_keys, small_payloads, passes=passes
        )
        assert np.array_equal(counts, single.counts)
        assert_same_partitions(multi_keys, single.partition_keys)

    def test_more_passes_more_traffic(self, small_keys, small_payloads):
        cpu = CpuPartitioner(num_partitions=64, hash_kind=HashKind.RADIX)
        _, _, _, bytes_1 = cpu.multipass_radix(
            small_keys, small_payloads, passes=1
        )
        _, _, _, bytes_2 = cpu.multipass_radix(
            small_keys, small_payloads, passes=2
        )
        assert bytes_2 > bytes_1

    def test_requires_radix(self, small_keys, small_payloads):
        cpu = CpuPartitioner(num_partitions=64, hash_kind=HashKind.MURMUR)
        with pytest.raises(ConfigurationError):
            cpu.multipass_radix(small_keys, small_payloads)

    def test_too_many_passes(self, small_keys, small_payloads):
        cpu = CpuPartitioner(num_partitions=4, hash_kind=HashKind.RADIX)
        with pytest.raises(ConfigurationError):
            cpu.multipass_radix(small_keys, small_payloads, passes=3)
