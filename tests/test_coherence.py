"""Tests for the coherence / snoop-penalty model (Section 2.2, Table 1)."""

import pytest

from repro.constants import (
    COHERENCE_RANDOM_READ_PENALTY,
    COHERENCE_SEQ_READ_PENALTY,
)
from repro.platform.coherence import (
    CoherenceDirectory,
    Socket,
    table1_read_seconds,
)


class TestTable1:
    def test_published_values(self):
        assert table1_read_seconds(Socket.CPU, random_access=False) == 0.1381
        assert table1_read_seconds(Socket.CPU, random_access=True) == 1.1537
        assert table1_read_seconds(Socket.FPGA, random_access=False) == 0.1533
        assert table1_read_seconds(Socket.FPGA, random_access=True) == 2.4876

    def test_penalty_factors(self):
        assert COHERENCE_RANDOM_READ_PENALTY == pytest.approx(2.156, abs=0.01)
        assert COHERENCE_SEQ_READ_PENALTY == pytest.approx(1.11, abs=0.01)

    def test_string_socket(self):
        assert table1_read_seconds("fpga", True) == 2.4876

    def test_bad_socket(self):
        with pytest.raises(ValueError):
            table1_read_seconds("gpu", True)


class TestDirectory:
    def test_default_is_cpu_homed(self):
        directory = CoherenceDirectory()
        assert directory.cpu_read_penalty("anything", random_access=True) == 1.0

    def test_fpga_write_slows_random_reads(self):
        directory = CoherenceDirectory()
        directory.record_region_write("parts", Socket.FPGA)
        penalty = directory.cpu_read_penalty("parts", random_access=True)
        assert penalty == pytest.approx(COHERENCE_RANDOM_READ_PENALTY)

    def test_fpga_write_mildly_slows_sequential_reads(self):
        directory = CoherenceDirectory()
        directory.record_region_write("parts", Socket.FPGA)
        penalty = directory.cpu_read_penalty("parts", random_access=False)
        assert 1.0 < penalty < 1.2

    def test_reads_do_not_clear_the_penalty(self):
        """The paper's observation: 'no matter how many times the CPU
        reads it, it does not get faster' — the snoop filter updates on
        writes only."""
        directory = CoherenceDirectory()
        directory.record_region_write("parts", Socket.FPGA)
        for _ in range(5):
            penalty = directory.cpu_read_penalty("parts", random_access=True)
        assert penalty > 2.0

    def test_cpu_write_rehomes(self):
        """'Only after the CPU writes that same region do the reads
        become just as fast.'"""
        directory = CoherenceDirectory()
        directory.record_region_write("parts", Socket.FPGA)
        directory.record_region_write("parts", Socket.CPU)
        assert directory.cpu_read_penalty("parts", random_access=True) == 1.0

    def test_snoop_counter(self):
        directory = CoherenceDirectory()
        directory.record_region_write("parts", Socket.FPGA)
        directory.cpu_read_penalty("parts", random_access=True)
        directory.cpu_read_penalty("parts", random_access=False)
        assert directory.snoops_to_fpga == 2


class TestLineGranularity:
    def test_mixed_writers_within_region(self):
        directory = CoherenceDirectory()
        directory.record_region_write("r", Socket.CPU)
        directory.record_line_write("r", 128, Socket.FPGA)
        assert directory.last_writer("r", 128) is Socket.FPGA
        assert directory.last_writer("r", 0) is Socket.CPU

    def test_region_write_clears_line_records(self):
        directory = CoherenceDirectory()
        directory.record_line_write("r", 128, Socket.FPGA)
        directory.record_region_write("r", Socket.CPU)
        assert directory.last_writer("r", 128) is Socket.CPU

    def test_line_granularity_is_cache_lines(self):
        directory = CoherenceDirectory()
        directory.record_line_write("r", 64, Socket.FPGA)
        assert directory.last_writer("r", 100) is Socket.FPGA  # same line
