"""Tests for the write-back module (Section 4.3)."""

import numpy as np
import pytest

from repro.core.fifo import Fifo
from repro.core.tuples import CacheLine
from repro.core.write_back import WriteBackModule
from repro.errors import PartitionOverflowError, SimulationError


def make_line(partition, tag=0):
    keys = np.full(8, tag, dtype=np.uint32)
    payloads = np.full(8, tag, dtype=np.uint32)
    return CacheLine(keys=keys, payloads=payloads, partition=partition)


def make_wb(num_partitions=4, num_lanes=2, capacity=None, out_depth=64):
    lanes = [Fifo(64, name=f"lane{i}") for i in range(num_lanes)]
    out = Fifo(out_depth, name="out")
    wb = WriteBackModule(
        num_partitions=num_partitions,
        input_fifos=lanes,
        output_fifo=out,
        partition_capacity_lines=capacity,
    )
    return wb, lanes, out


def run_until_drained(wb, max_cycles=1000):
    cycles = 0
    while not wb.is_drained():
        wb.tick()
        cycles += 1
        assert cycles < max_cycles
    for _ in range(4):
        wb.tick()
    return cycles


class TestAddressing:
    def test_base_plus_offset(self):
        wb, lanes, out = make_wb()
        wb.load_base_addresses(np.array([0, 10, 20, 30]))
        lanes[0].push(make_line(1, tag=1))
        lanes[0].push(make_line(1, tag=2))
        lanes[0].push(make_line(3, tag=3))
        run_until_drained(wb)
        addressed = [out.pop() for _ in range(3)]
        by_tag = {int(a.line.keys[0]): a.address for a in addressed}
        assert by_tag[1] == 10
        assert by_tag[2] == 11
        assert by_tag[3] == 30

    def test_offsets_reset(self):
        wb, lanes, out = make_wb()
        wb.load_base_addresses(np.array([0, 10, 20, 30]))
        lanes[0].push(make_line(0))
        run_until_drained(wb)
        out.pop()
        wb.reset_offsets()
        lanes[0].push(make_line(0, tag=9))
        run_until_drained(wb)
        assert out.pop().address == 0

    def test_base_length_validated(self):
        wb, lanes, out = make_wb(num_partitions=4)
        with pytest.raises(SimulationError):
            wb.load_base_addresses(np.array([0, 1]))


class TestRoundRobin:
    def test_drains_all_lanes(self):
        wb, lanes, out = make_wb(num_lanes=3)
        wb.load_base_addresses(np.zeros(4, dtype=np.int64))
        for lane_index, lane in enumerate(lanes):
            lane.push(make_line(lane_index % 4, tag=lane_index))
        run_until_drained(wb)
        assert wb.lines_out == 3

    def test_work_conserving(self):
        """An idle lane does not steal drain slots from a busy one."""
        wb, lanes, out = make_wb(num_lanes=4)
        wb.load_base_addresses(np.zeros(4, dtype=np.int64))
        for i in range(6):
            lanes[2].push(make_line(0, tag=i))
        cycles = run_until_drained(wb)
        # 6 lines + 2-cycle offset pipeline; a non-work-conserving RR
        # would need ~24 cycles.
        assert cycles <= 12
        assert wb.lines_out == 6


class TestForwarding:
    def test_back_to_back_same_partition_offsets(self):
        """Consecutive lines of one partition must get consecutive
        addresses despite the 2-cycle offset-BRAM latency."""
        wb, lanes, out = make_wb(num_lanes=1)
        wb.load_base_addresses(np.zeros(4, dtype=np.int64))
        for i in range(10):
            lanes[0].push(make_line(2, tag=i))
        run_until_drained(wb)
        addresses = []
        while not out.is_empty():
            addresses.append(out.pop().address)
        assert sorted(addresses) == list(range(10))
        assert len(set(addresses)) == 10


class TestOverflow:
    def test_capacity_overflow_raises(self):
        wb, lanes, out = make_wb(capacity=2)
        wb.load_base_addresses(np.zeros(4, dtype=np.int64))
        for i in range(3):
            lanes[0].push(make_line(1, tag=i))
        with pytest.raises(PartitionOverflowError):
            run_until_drained(wb)

    def test_at_capacity_is_fine(self):
        wb, lanes, out = make_wb(capacity=2)
        wb.load_base_addresses(np.zeros(4, dtype=np.int64))
        lanes[0].push(make_line(1))
        lanes[0].push(make_line(1))
        run_until_drained(wb)
        assert wb.lines_out == 2


class TestBackpressure:
    def test_stalls_on_full_output(self):
        wb, lanes, out = make_wb(out_depth=1)
        wb.load_base_addresses(np.zeros(4, dtype=np.int64))
        for i in range(5):
            lanes[0].push(make_line(0, tag=i))
        for _ in range(30):
            wb.tick()  # must not overflow the output FIFO
        assert wb.stall_cycles > 0
        # drain interleaved
        seen = 0
        for _ in range(100):
            if not out.is_empty():
                out.pop()
                seen += 1
            wb.tick()
        while not out.is_empty():
            out.pop()
            seen += 1
        assert seen == 5
