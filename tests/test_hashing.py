"""Tests for repro.core.hashing (Section 4.1, Code 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    fanout_bits,
    murmur3_finalizer,
    murmur3_finalizer64,
    partition_of,
    radix_bits,
)
from repro.errors import ConfigurationError


class TestMurmur32:
    def test_zero_maps_to_zero(self):
        # The finalizer is a bijection fixing 0.
        assert murmur3_finalizer(0) == 0

    def test_known_vector(self):
        # Reference value computed from the Code 3 steps by hand.
        key = 0x12345678
        h = key
        h ^= h >> 16
        h = (h * 0x85EBCA6B) & 0xFFFFFFFF
        h ^= h >> 13
        h = (h * 0xC2B2AE35) & 0xFFFFFFFF
        h ^= h >> 16
        assert murmur3_finalizer(key) == h

    def test_scalar_range(self):
        for key in (0, 1, 2**31, 2**32 - 1, 0xDEADBEEF):
            assert 0 <= murmur3_finalizer(key) <= 2**32 - 1

    def test_vector_matches_scalar(self):
        keys = np.array([0, 1, 7, 2**31, 2**32 - 1], dtype=np.uint32)
        hashed = murmur3_finalizer(keys)
        for k, h in zip(keys, hashed):
            assert murmur3_finalizer(int(k)) == int(h)

    def test_vector_requires_uint32(self):
        with pytest.raises(ConfigurationError):
            murmur3_finalizer(np.array([1, 2], dtype=np.int64))

    def test_vector_does_not_mutate_input(self):
        keys = np.array([1, 2, 3], dtype=np.uint32)
        copy = keys.copy()
        murmur3_finalizer(keys)
        assert np.array_equal(keys, copy)

    def test_avalanche_on_sequential_keys(self):
        # Sequential keys must spread across the low bits (the property
        # radix partitioning lacks on structured keys).
        keys = np.arange(1, 10001, dtype=np.uint32)
        low = murmur3_finalizer(keys) & np.uint32(0xFF)
        counts = np.bincount(low, minlength=256)
        assert counts.min() > 0
        assert counts.max() < 4 * counts.mean()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200)
    def test_scalar_vector_agree(self, key):
        vec = murmur3_finalizer(np.array([key], dtype=np.uint32))
        assert int(vec[0]) == murmur3_finalizer(key)

    def test_bijective_on_sample(self):
        keys = np.arange(100000, dtype=np.uint32)
        hashed = murmur3_finalizer(keys)
        assert np.unique(hashed).size == keys.size


class TestMurmur64:
    def test_zero(self):
        assert murmur3_finalizer64(0) == 0

    def test_scalar_vector_agree(self):
        keys = np.array([1, 2**40, 2**64 - 1], dtype=np.uint64)
        hashed = murmur3_finalizer64(keys)
        for k, h in zip(keys, hashed):
            assert murmur3_finalizer64(int(k)) == int(h)

    def test_vector_requires_uint64(self):
        with pytest.raises(ConfigurationError):
            murmur3_finalizer64(np.array([1], dtype=np.uint32))

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=100)
    def test_range(self, key):
        assert 0 <= murmur3_finalizer64(key) <= 2**64 - 1


class TestRadixBits:
    def test_scalar(self):
        assert radix_bits(0b101101, 3) == 0b101
        assert radix_bits(0b101101, 6) == 0b101101

    def test_vector(self):
        keys = np.array([0b1111, 0b1000], dtype=np.uint32)
        assert list(radix_bits(keys, 3)) == [0b111, 0b000]

    @pytest.mark.parametrize("bad", [0, -1, 33])
    def test_invalid_bit_counts(self, bad):
        with pytest.raises(ConfigurationError):
            radix_bits(1, bad)


class TestFanoutBits:
    @pytest.mark.parametrize(
        "partitions,bits", [(2, 1), (256, 8), (8192, 13), (2**20, 20)]
    )
    def test_powers_of_two(self, partitions, bits):
        assert fanout_bits(partitions) == bits

    @pytest.mark.parametrize("bad", [0, 1, 3, 100, 8191])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ConfigurationError):
            fanout_bits(bad)


class TestPartitionOf:
    def test_radix_is_low_bits(self):
        keys = np.arange(64, dtype=np.uint32)
        parts = partition_of(keys, 16, use_hash=False)
        assert np.array_equal(parts, keys % 16)

    def test_hash_differs_from_radix(self):
        keys = np.arange(1, 1025, dtype=np.uint32)
        hashed = partition_of(keys, 16, use_hash=True)
        radix = partition_of(keys, 16, use_hash=False)
        assert not np.array_equal(np.asarray(hashed), np.asarray(radix))

    def test_scalar_matches_vector(self):
        keys = np.array([3, 17, 12345], dtype=np.uint32)
        vec = partition_of(keys, 64, use_hash=True)
        for k, p in zip(keys, vec):
            assert partition_of(int(k), 64, use_hash=True) == int(p)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([2, 16, 256, 8192]),
        st.booleans(),
    )
    @settings(max_examples=200)
    def test_always_in_range(self, key, partitions, use_hash):
        p = partition_of(key, partitions, use_hash)
        assert 0 <= p < partitions
