"""Tests for the event-driven circuit fast-forward (repro.exec.fast_forward).

The contract: ``circuit.run(..., fast_forward=True)`` must produce a
:class:`CircuitStats` *exactly equal* to the cycle-by-cycle reference —
every counter, including stalls, back-pressure and forwarding hits —
and an identical memory image.  Adversarial inputs (all tuples in one
partition, alternating partitions, a single tuple) plus a hypothesis
sweep over the four mode combinations pin that equality; further tests
cover the fallback preconditions, error parity and the
``output_padding_fraction`` fix.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import CircuitStats, PartitionerCircuit
from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.errors import PartitionOverflowError, SimulationError
from repro.exec.fast_forward import supports_fast_forward


def _run_both(make_circuit, keys, payloads=None, max_cycles=None):
    # the circuit is stateful across runs, so each run gets a fresh one
    reference = make_circuit().run(keys, payloads, max_cycles=max_cycles)
    fast = make_circuit().run(
        keys, payloads, max_cycles=max_cycles, fast_forward=True
    )
    return reference, fast


def _assert_identical(reference, fast):
    assert reference.stats == fast.stats
    assert reference.memory_image.keys() == fast.memory_image.keys()
    for address, line in reference.memory_image.items():
        other = fast.memory_image[address]
        assert np.array_equal(line.keys, other.keys), address
        assert np.array_equal(line.payloads, other.payloads), address


class TestAdversarialParity:
    def test_all_same_partition(self):
        config = PartitionerConfig(
            num_partitions=16,
            hash_kind=HashKind.RADIX,
            layout_mode=LayoutMode.VRID,
        )
        keys = np.full(2048, 5, dtype=np.uint32)
        _assert_identical(*_run_both(lambda: PartitionerCircuit(config), keys))

    def test_alternating_partitions(self):
        config = PartitionerConfig(
            num_partitions=16,
            hash_kind=HashKind.RADIX,
            layout_mode=LayoutMode.VRID,
        )
        keys = (np.arange(2048, dtype=np.uint32) % 2) * 7
        _assert_identical(*_run_both(lambda: PartitionerCircuit(config), keys))

    def test_single_tuple(self):
        config = PartitionerConfig(
            num_partitions=16, layout_mode=LayoutMode.VRID
        )
        keys = np.array([42], dtype=np.uint32)
        _assert_identical(*_run_both(lambda: PartitionerCircuit(config), keys))

    def test_stall_heavy_large_uniform(self, rng):
        # large enough that the critically-loaded back end genuinely
        # stalls; equality must include those stall counters
        config = PartitionerConfig(
            num_partitions=256, layout_mode=LayoutMode.VRID
        )
        keys = rng.integers(0, 2**32, size=50_000, dtype=np.uint32)
        reference, fast = _run_both(lambda: PartitionerCircuit(config), keys)
        _assert_identical(reference, fast)
        assert reference.stats == fast.stats


@st.composite
def _mode_and_keys(draw):
    output_mode = draw(st.sampled_from(list(OutputMode)))
    layout_mode = draw(st.sampled_from(list(LayoutMode)))
    hash_kind = draw(st.sampled_from(list(HashKind)))
    n = draw(st.integers(min_value=1, max_value=600))
    pattern = draw(st.sampled_from(["random", "constant", "alternating"]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return output_mode, layout_mode, hash_kind, n, pattern, seed


class TestPropertyParity:
    @settings(max_examples=25, deadline=None)
    @given(_mode_and_keys())
    def test_fast_forward_equals_reference(self, case):
        output_mode, layout_mode, hash_kind, n, pattern, seed = case
        rng = np.random.default_rng(seed)
        if pattern == "random":
            keys = rng.integers(0, 2**32, size=n, dtype=np.uint32)
        elif pattern == "constant":
            keys = np.full(n, 3, dtype=np.uint32)
        else:
            keys = (np.arange(n, dtype=np.uint32) % 2) * 9
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=output_mode,
            layout_mode=layout_mode,
            hash_kind=hash_kind,
            pad_tuples=4096 if output_mode is OutputMode.PAD else None,
        )
        payloads = (
            None
            if layout_mode is LayoutMode.VRID
            else rng.integers(0, 2**32, size=n, dtype=np.uint32)
        )
        _assert_identical(
            *_run_both(lambda: PartitionerCircuit(config), keys, payloads)
        )


class TestFallbackPreconditions:
    def test_qpi_link_disables_fast_path(self):
        config = PartitionerConfig(
            num_partitions=16, layout_mode=LayoutMode.VRID
        )
        throttled = PartitionerCircuit(config, qpi_bandwidth_gbs=6.5)
        assert not supports_fast_forward(throttled, None)
        # still correct: fast_forward=True silently runs the real loop
        keys = np.arange(512, dtype=np.uint32)
        _assert_identical(*_run_both(
            lambda: PartitionerCircuit(config, qpi_bandwidth_gbs=6.5), keys
        ))

    def test_disabled_forwarding_disables_fast_path(self):
        # without forwarding the circuit is only correct on hazard-free
        # inputs (see bench_ablation_forwarding); line-granular cycling
        # keeps same-partition tuples 16 cycles apart within a lane
        config = PartitionerConfig(
            num_partitions=16,
            hash_kind=HashKind.RADIX,
            layout_mode=LayoutMode.VRID,
        )
        circuit = PartitionerCircuit(config, enable_forwarding=False)
        assert not supports_fast_forward(circuit, None)
        keys = ((np.arange(512) // 8) % 16).astype(np.uint32)
        _assert_identical(*_run_both(
            lambda: PartitionerCircuit(config, enable_forwarding=False), keys
        ))

    def test_on_cycle_probe_disables_fast_path(self):
        config = PartitionerConfig(
            num_partitions=16, layout_mode=LayoutMode.VRID
        )
        circuit = PartitionerCircuit(config)
        assert supports_fast_forward(circuit, None)
        assert not supports_fast_forward(circuit, lambda c, cycle: None)
        probes = []
        result = circuit.run(
            np.arange(256, dtype=np.uint32),
            on_cycle=lambda c, cycle: probes.append(cycle),
            fast_forward=True,
        )
        assert probes, "the probe must still fire (real loop ran)"
        assert result.stats.tuples_in == 256


class TestErrorParity:
    def test_pad_overflow_attributes_match(self):
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.VRID,
            pad_tuples=0,
        )
        keys = np.full(4096, 3, dtype=np.uint32)

        def outcome(fast_forward):
            try:
                PartitionerCircuit(config).run(keys, fast_forward=fast_forward)
                return None
            except PartitionOverflowError as error:
                return (error.partition, error.capacity, error.tuples_seen)

        reference = outcome(False)
        fast = outcome(True)
        assert reference is not None and reference == fast

    def test_max_cycles_message_matches(self):
        config = PartitionerConfig(
            num_partitions=16, layout_mode=LayoutMode.VRID
        )
        keys = np.arange(4096, dtype=np.uint32)

        def outcome(fast_forward):
            try:
                PartitionerCircuit(config).run(
                    keys, max_cycles=10, fast_forward=fast_forward
                )
                return None
            except SimulationError as error:
                return str(error)

        reference = outcome(False)
        fast = outcome(True)
        assert reference is not None and reference == fast


class TestPaddingFractionRegression:
    def test_fraction_over_written_slots(self):
        # 10 dummy slots over 90 tuples written: 10% of output slots
        stats = CircuitStats(tuples_in=90, lines_out=13, dummy_slots_out=10)
        assert stats.output_padding_fraction == pytest.approx(10 / 100)

    def test_hist_pass_counts_no_padding(self):
        # HIST first pass reads tuples but writes nothing: no padding
        stats = CircuitStats(tuples_in=1000, lines_out=0, dummy_slots_out=0)
        assert stats.output_padding_fraction == 0.0

    def test_simulated_hist_run_reports_finite_fraction(self):
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.HIST,
            layout_mode=LayoutMode.VRID,
        )
        keys = np.arange(1000, dtype=np.uint32)
        result = PartitionerCircuit(config).run(keys)
        stats = result.stats
        # the input is counted once (the histogram pass doesn't double
        # it), so dummy + tuples_in is exactly the written slot count
        assert stats.tuples_in == 1000
        written_slots = stats.dummy_slots_out + stats.tuples_in
        assert written_slots == stats.lines_out * config.tuples_per_line
        assert 0.0 <= stats.output_padding_fraction < 1.0
        assert stats.output_padding_fraction == pytest.approx(
            stats.dummy_slots_out / written_slots
        )

    def test_stats_equality_is_field_complete(self):
        # dataclass equality covers every counter the fast path must set
        fields = {f.name for f in dataclasses.fields(CircuitStats)}
        assert {
            "cycles",
            "histogram_pass_cycles",
            "partition_pass_cycles",
            "flush_cycles",
            "lines_in",
            "lines_out",
            "tuples_in",
            "dummy_slots_out",
            "input_backpressure_cycles",
            "combiner_stall_cycles",
            "writeback_stall_cycles",
            "forwarding_hits",
        } <= fields
