"""Tests for the workload generators (Sections 3.2 and 5, Table 4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    KeyDistribution,
    generate_keys,
    grid_keys,
    linear_keys,
    random_keys,
    reverse_grid_keys,
    zipf_keys,
)
from repro.workloads.relations import (
    WORKLOAD_SPECS,
    Relation,
    make_relation,
    make_workload,
)


class TestLinear:
    def test_unique_range(self):
        keys = linear_keys(1000)
        assert keys[0] == 1 and keys[-1] == 1000
        assert np.unique(keys).size == 1000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            linear_keys(0)


class TestRandom:
    def test_deterministic_per_seed(self):
        assert np.array_equal(random_keys(100, seed=7), random_keys(100, seed=7))
        assert not np.array_equal(
            random_keys(100, seed=7), random_keys(100, seed=8)
        )

    def test_full_range(self):
        keys = random_keys(100000, seed=0)
        assert int(keys.max()) > 2**31  # uses the full 32-bit range


class TestGridFamily:
    def test_grid_bytes_in_1_to_128(self):
        keys = grid_keys(10000)
        for shift in range(0, 32, 8):
            bytes_ = (keys >> np.uint32(shift)) & np.uint32(0xFF)
            assert bytes_.min() >= 1
            assert bytes_.max() <= 128

    def test_grid_lsb_increments_first(self):
        keys = grid_keys(5)
        lsb = keys & np.uint32(0xFF)
        assert list(lsb) == [1, 2, 3, 4, 5]

    def test_reverse_grid_msb_increments_first(self):
        keys = reverse_grid_keys(5)
        msb = keys >> np.uint32(24)
        assert list(msb) == [1, 2, 3, 4, 5]
        # the other bytes stay at their minimum
        assert list(keys & np.uint32(0xFF)) == [1, 1, 1, 1, 1]

    def test_grid_keys_unique(self):
        keys = grid_keys(200000)
        assert np.unique(keys).size == 200000

    def test_grid_wraps_at_128(self):
        keys = grid_keys(130)
        assert int(keys[127] & np.uint32(0xFF)) == 128
        assert int(keys[128] & np.uint32(0xFF)) == 1  # wrapped
        assert int((keys[128] >> np.uint32(8)) & np.uint32(0xFF)) == 2

    def test_reverse_grid_is_radix_adversarial(self):
        """The low key bits of reverse-grid keys barely move — the
        reason Figure 3a's radix curves collapse."""
        keys = reverse_grid_keys(10000)
        low_bits = keys & np.uint32(0x1FFF)  # 13 radix bits
        assert np.unique(low_bits).size < 100


class TestZipf:
    def test_factor_zero_roughly_uniform(self):
        keys = zipf_keys(50000, zipf_factor=0.0, key_space=100, seed=1)
        counts = np.bincount(keys, minlength=101)[1:]
        assert counts.max() < 2 * counts.mean()

    def test_higher_factor_more_skew(self):
        def top_share(factor):
            keys = zipf_keys(50000, zipf_factor=factor, key_space=1000, seed=1)
            counts = np.bincount(keys)
            return counts.max() / 50000

        assert top_share(0.5) < top_share(1.0) < top_share(1.75)

    def test_keys_within_key_space(self):
        keys = zipf_keys(1000, 1.0, key_space=50, seed=0)
        assert keys.min() >= 1 and keys.max() <= 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_keys(10, -1.0)
        with pytest.raises(ConfigurationError):
            zipf_keys(10, 1.0, key_space=0)


class TestGenerateKeys:
    @pytest.mark.parametrize(
        "name", ["linear", "random", "grid", "reverse_grid"]
    )
    def test_dispatch_by_string(self, name):
        keys = generate_keys(name, 100)
        assert keys.shape == (100,) and keys.dtype == np.uint32

    def test_dispatch_by_enum(self):
        keys = generate_keys(KeyDistribution.ZIPF, 100, zipf_factor=1.0)
        assert keys.shape == (100,)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate_keys("gaussian", 100)


class TestRelation:
    def test_byte_accounting(self):
        rel = make_relation(1000, tuple_bytes=16)
        assert rel.total_bytes == 16000
        assert rel.key_bytes == 4000

    def test_dtype_enforced(self):
        with pytest.raises(ConfigurationError):
            Relation(
                keys=np.arange(4, dtype=np.int64),
                payloads=np.arange(4, dtype=np.uint32),
            )

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            Relation(
                keys=np.arange(4, dtype=np.uint32),
                payloads=np.arange(3, dtype=np.uint32),
            )

    def test_tuple_width_validated(self):
        with pytest.raises(ConfigurationError):
            make_relation(10, tuple_bytes=12)

    def test_head(self):
        rel = make_relation(100)
        assert len(rel.head(10)) == 10


class TestWorkloads:
    def test_table4_specs(self):
        assert WORKLOAD_SPECS["A"].r_tuples == 128 * 10**6
        assert WORKLOAD_SPECS["B"].r_tuples == 16 * 2**20
        assert WORKLOAD_SPECS["B"].s_tuples == 256 * 2**20
        assert WORKLOAD_SPECS["D"].distribution is KeyDistribution.GRID
        assert (
            WORKLOAD_SPECS["E"].distribution is KeyDistribution.REVERSE_GRID
        )

    def test_scaling(self):
        wl = make_workload("A", scale=1000)
        assert len(wl.r) == 128 * 10**6 // 1000

    def test_workload_b_asymmetric(self):
        wl = make_workload("B", scale=2**10)
        assert len(wl.s) == 16 * len(wl.r)

    def test_random_workload_s_keys_drawn_from_r(self):
        wl = make_workload("C", scale=100000)
        assert set(map(int, wl.s.keys)).issubset(set(map(int, wl.r.keys)))

    def test_skewed_s(self):
        wl = make_workload("A", scale=100000, skew_s_zipf=1.0)
        counts = np.bincount(wl.s.keys)
        assert counts.max() > 10 * counts[counts > 0].mean()
        # all S keys have R partners
        assert wl.s.keys.max() <= len(wl.r)

    def test_skew_requires_linear(self):
        with pytest.raises(ConfigurationError):
            make_workload("C", scale=100000, skew_s_zipf=1.0)

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            make_workload("Z")

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            make_workload("A", scale=0)

    def test_total_tuples(self):
        wl = make_workload("A", scale=10**6)
        assert wl.total_tuples == len(wl.r) + len(wl.s)


class TestArrivals:
    """Open-loop arrival-pattern generators (repro.workloads.arrivals)."""

    def test_poisson_shape_and_determinism(self):
        from repro.workloads import poisson_arrivals

        a = poisson_arrivals(5000, rate=100.0, seed=3)
        b = poisson_arrivals(5000, rate=100.0, seed=3)
        c = poisson_arrivals(5000, rate=100.0, seed=4)
        assert a.shape == (5000,) and a.dtype == np.float64
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(np.diff(a) >= 0) and a[0] >= 0
        # mean rate within 10% over 5000 events
        assert abs(a[-1] - 50.0) < 5.0

    def test_burst_preserves_average_rate(self):
        from repro.workloads import burst_arrivals

        a = burst_arrivals(
            4096, rate=200.0, burst_size=64, duty_cycle=0.1, seed=1
        )
        assert np.all(np.diff(a) >= 0)
        # 4096 events at 200/s average ≈ 20.5s of trace
        assert abs(a[-1] - 4096 / 200.0) < 2.0
        # every event lands inside the first 10% of its period
        period = 64 / 200.0
        assert np.all((a % period) <= period * 0.1 + 1e-9)

    def test_diurnal_modulates_but_keeps_mean(self):
        from repro.workloads import diurnal_arrivals

        a = diurnal_arrivals(
            3000, mean_rate=100.0, period_s=10.0, amplitude=0.9, seed=2
        )
        assert np.all(np.diff(a) >= 0)
        # total duration near the homogeneous expectation (30s)
        assert 20.0 < a[-1] < 45.0
        # crest (first quarter-period) is denser than trough (third)
        crest = np.sum((a % 10.0) < 2.5)
        trough = np.sum(((a % 10.0) >= 5.0) & ((a % 10.0) < 7.5))
        assert crest > 2 * trough

    def test_ramp_accelerates(self):
        from repro.workloads import ramp_arrivals

        a = ramp_arrivals(4000, start_rate=50.0, end_rate=500.0, seed=5)
        assert np.all(np.diff(a) >= 0)
        first_half = a[1999] - a[0]
        second_half = a[-1] - a[2000]
        # ten-fold rate sweep: the back half runs much faster
        assert first_half > 2 * second_half

    def test_dispatch_and_enum(self):
        from repro.workloads import ArrivalPattern, generate_arrivals

        for pattern in ArrivalPattern:
            offsets = generate_arrivals(pattern, 256, 100.0, seed=7)
            assert offsets.shape == (256,)
            assert np.all(np.diff(offsets) >= 0)
        by_name = generate_arrivals("burst", 64, 10.0, seed=1)
        assert by_name.shape == (64,)

    def test_empty_and_validation(self):
        from repro.workloads import (
            burst_arrivals,
            diurnal_arrivals,
            poisson_arrivals,
            ramp_arrivals,
        )

        assert poisson_arrivals(0, 10.0).shape == (0,)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(10, rate=0.0)
        with pytest.raises(ConfigurationError):
            burst_arrivals(10, rate=5.0, burst_size=0)
        with pytest.raises(ConfigurationError):
            burst_arrivals(10, rate=5.0, duty_cycle=1.5)
        with pytest.raises(ConfigurationError):
            diurnal_arrivals(10, mean_rate=5.0, amplitude=1.0)
        with pytest.raises(ConfigurationError):
            ramp_arrivals(10, start_rate=5.0, end_rate=-1.0)
