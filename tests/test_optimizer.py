"""Adaptive-optimizer decision properties and byte-identity.

Three invariants pinned here:

* **Monotonicity** — more skew never shrinks the isolation set, and a
  larger input never flips a multi-pass routing back to single-pass.
* **Determinism** — two optimizers built with the same seed decide
  identically on the same key columns.
* **Byte-identity** — optimized responses carry exactly the partition
  contents and counts of the static path, for every HIST/PAD ×
  RID/VRID combination and for every pad strategy the optimizer picks.
"""


import numpy as np
import pytest

from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ConfigurationError
from repro.optimize import (
    AdaptiveOptimizer,
    Decision,
    StaticOptimizer,
    WorkloadProfile,
    partition_isolated,
)
from repro.service.service import PartitionService
from repro.workloads.relations import make_relation


def pad_config(**overrides) -> PartitionerConfig:
    defaults = dict(num_partitions=64, output_mode=OutputMode.PAD)
    defaults.update(overrides)
    return PartitionerConfig(**defaults)


def skewed_profile(hot_share: float, extra=()) -> WorkloadProfile:
    """One dominant key at ``hot_share`` plus optional (key, share)s."""
    hot = [(7, hot_share)] + list(extra)
    return WorkloadProfile(
        num_tuples=1_000_000,
        distinct_keys=50_000,
        hot_keys=tuple(k for k, _ in hot),
        hot_shares=tuple(s for _, s in hot),
    )


def assert_same_contents(a, b, num_partitions):
    assert np.array_equal(a.counts, b.counts)
    for p in range(num_partitions):
        assert np.array_equal(a.partition_keys[p], b.partition_keys[p])
        assert np.array_equal(
            a.partition_payloads[p], b.partition_payloads[p]
        )


class TestDecision:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            Decision(
                backend="gpu", pad_strategy="keep", isolate_keys=(),
                multi_pass=False, est_seconds=0.0, reason="",
            )

    def test_rejects_unknown_pad_strategy(self):
        with pytest.raises(ConfigurationError):
            Decision(
                backend="fpga", pad_strategy="avoid", isolate_keys=(),
                multi_pass=False, est_seconds=0.0, reason="",
            )

    def test_batch_token_separates_plans(self):
        keep = Decision("fpga", "keep", (), False, 0.0, "")
        isolate = Decision("fpga", "isolate", (7,), False, 0.0, "")
        assert keep.batch_token != isolate.batch_token


class TestMonotonicity:
    def test_more_skew_never_decreases_isolation(self):
        opt = AdaptiveOptimizer(seed=0)
        config = pad_config()
        sizes = []
        for share in np.linspace(0.005, 0.6, 40):
            decision = opt.plan_for(skewed_profile(float(share)), config)
            sizes.append(len(decision.isolate_keys))
        assert sizes == sorted(sizes), sizes
        assert sizes[-1] >= 1  # the 60% key is definitely isolated

    def test_isolation_monotone_with_mid_weight_keys(self):
        # several mid-weight keys sharing a partition must be isolated
        # once their joint mass endangers it, and adding mass to any of
        # them never shrinks the set
        opt = AdaptiveOptimizer(seed=0)
        config = pad_config()
        extras = [(k, 0.02) for k in range(100, 110)]
        base = opt.plan_for(skewed_profile(0.05, extras), config)
        heavier = opt.plan_for(
            skewed_profile(0.05, [(k, 0.04) for k, _ in extras]), config
        )
        assert set(base.isolate_keys) <= set(heavier.isolate_keys)

    def test_larger_inputs_never_flip_to_single_pass(self):
        opt = AdaptiveOptimizer(seed=0, memory_budget_bytes=64 << 20)
        config = pad_config()
        flags = []
        for n in [10**4, 10**5, 10**6, 10**7, 10**8]:
            profile = WorkloadProfile(
                num_tuples=n, distinct_keys=min(n, 10_000),
                hot_keys=(), hot_shares=(),
            )
            flags.append(opt.plan_for(profile, config).multi_pass)
        # once multi-pass, always multi-pass as n grows
        assert flags == sorted(flags)
        assert flags[-1] is True
        assert opt.plan_for(
            WorkloadProfile(
                num_tuples=10**8, distinct_keys=10_000,
                hot_keys=(), hot_shares=(),
            ),
            config,
        ).backend == "spill"

    def test_uniform_profile_keeps_static_plan(self):
        opt = AdaptiveOptimizer(seed=0)
        profile = WorkloadProfile(
            num_tuples=100_000, distinct_keys=90_000,
            hot_keys=(), hot_shares=(),
        )
        decision = opt.plan_for(profile, pad_config())
        assert decision.pad_strategy == "keep"
        assert decision.isolate_keys == ()
        assert decision.multi_pass is False


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        keys = make_relation(
            200_000, "zipf", seed=3, zipf_factor=1.2
        ).keys
        config = pad_config()
        a = AdaptiveOptimizer(seed=42)
        b = AdaptiveOptimizer(seed=42)
        for _ in range(3):
            da, db = a.decide(keys, config), b.decide(keys, config)
            assert da == db

    def test_same_observations_same_decisions(self):
        keys = make_relation(
            150_000, "zipf", seed=5, zipf_factor=1.1
        ).keys
        config = pad_config()
        a = AdaptiveOptimizer(seed=9)
        b = AdaptiveOptimizer(seed=9)
        for opt in (a, b):
            opt.observe("fpga", 100_000, 0.01)
            opt.observe("cpu", 100_000, 0.002)
        assert a.decide(keys, config) == b.decide(keys, config)

    def test_explain_is_deterministic(self):
        profiles = {
            "zipf": WorkloadProfile.from_keys(
                make_relation(
                    100_000, "zipf", seed=1, zipf_factor=1.2
                ).keys
            ),
        }
        rows_a = AdaptiveOptimizer(seed=4).explain(profiles)
        rows_b = AdaptiveOptimizer(seed=4).explain(profiles)
        assert rows_a == rows_b


@pytest.mark.parametrize("output_mode", [OutputMode.PAD, OutputMode.HIST])
@pytest.mark.parametrize("layout_mode", [LayoutMode.RID, LayoutMode.VRID])
class TestByteIdentity:
    def test_optimized_service_matches_static(
        self, output_mode, layout_mode
    ):
        config = PartitionerConfig(
            num_partitions=64,
            output_mode=output_mode,
            layout_mode=layout_mode,
        )
        relation = make_relation(
            120_000, "zipf", seed=11, zipf_factor=1.2
        )
        with FpgaPartitioner(config=config) as static:
            reference = static.partition(relation, on_overflow="hist")
        with PartitionService(
            optimizer=AdaptiveOptimizer(seed=1)
        ) as service:
            response = service.partition(
                relation, config=config, on_overflow="hist"
            )
        assert response.ok
        assert_same_contents(
            response.output, reference, config.num_partitions
        )

    def test_isolated_partition_matches_static(
        self, output_mode, layout_mode
    ):
        config = PartitionerConfig(
            num_partitions=64,
            output_mode=output_mode,
            layout_mode=layout_mode,
        )
        relation = make_relation(
            120_000, "zipf", seed=13, zipf_factor=1.2
        )
        opt = AdaptiveOptimizer(seed=2)
        decision = opt.plan_for(
            WorkloadProfile.from_keys(relation.keys), config
        )
        with FpgaPartitioner(config=config) as partitioner:
            reference = partitioner.partition(relation, on_overflow="hist")
            optimized = partition_isolated(
                partitioner,
                relation,
                hot_keys=decision.isolate_keys,
                on_overflow="hist",
            )
        assert_same_contents(
            optimized, reference, config.num_partitions
        )
        if output_mode is OutputMode.PAD and decision.isolate_keys:
            assert optimized.isolated_partitions > 0
            assert optimized.produced_by == "fpga-isolated"


class TestServiceWiring:
    def test_skewed_pad_raise_path_never_raises(self):
        # the bug this PR fixes: a hot key used to blow the PAD raise
        # path; the optimizer isolates it instead
        config = pad_config()
        relation = make_relation(
            150_000, "zipf", seed=17, zipf_factor=1.2
        )
        with FpgaPartitioner(config=config) as static:
            with pytest.raises(Exception):
                static.partition(relation, on_overflow="raise")
            reference = static.partition(relation, on_overflow="hist")
        with PartitionService(
            optimizer=AdaptiveOptimizer(seed=3)
        ) as service:
            response = service.partition(
                relation, config=config, on_overflow="raise"
            )
        assert response.ok
        assert response.status.value == "ok"
        assert_same_contents(
            response.output, reference, config.num_partitions
        )

    def test_decision_counters_and_snapshot(self):
        config = pad_config()
        relation = make_relation(
            100_000, "zipf", seed=19, zipf_factor=1.2
        )
        opt = AdaptiveOptimizer(seed=5)
        with PartitionService(optimizer=opt) as service:
            assert service.partition(
                relation, config=config, on_overflow="hist"
            ).ok
            snap = service.snapshot()
        assert snap["counters"]["optimized"] == 1
        assert snap["optimizer"]["observations"] >= 1
        assert sum(snap["optimizer"]["decisions"].values()) == 1

    def test_decisions_split_batches(self):
        # a skewed and a uniform request must not coalesce: their
        # execution plans differ, so their signatures must too
        config = pad_config()
        zipf = make_relation(
            100_000, "zipf", seed=23, zipf_factor=1.2
        )
        uniform = make_relation(100_000, "random", seed=23)
        # reuse off: each request planned fresh (a *reused* plan may
        # legitimately coalesce — same plan, same kernel semantics)
        opt = AdaptiveOptimizer(seed=6, reprofile_interval=0)
        d_zipf = opt.decide(zipf.keys, config)
        d_uniform = opt.decide(uniform.keys, config)
        assert d_zipf.batch_token != d_uniform.batch_token

    def test_static_optimizer_is_identity(self):
        config = pad_config()
        relation = make_relation(100_000, "random", seed=29)
        opt = StaticOptimizer()
        decision = opt.decide(relation.keys, config)
        assert decision.pad_strategy == "keep"
        assert decision.backend == "fpga"
        assert opt.snapshot() == {
            "decisions": {}, "rates": {}, "observations": 0
        }

    def test_force_spill_routes_multi_pass(self, tmp_path):
        config = PartitionerConfig(num_partitions=16)
        relation = make_relation(50_000, "random", seed=31)
        opt = AdaptiveOptimizer(seed=7, memory_budget_bytes=1 << 10)
        with PartitionService(
            optimizer=opt, spill_dir=tmp_path
        ) as service:
            response = service.partition(relation, config=config)
        assert response.ok
        assert response.backend == "spill"
        assert response.spill is not None
        response.spill.cleanup()


class TestCalibration:
    def test_observed_rates_reroute_to_cpu(self):
        opt = AdaptiveOptimizer(seed=8)
        config = pad_config()
        # large enough that the fpga model's startup cost is amortised
        # and the model-based choice is fpga
        profile = WorkloadProfile(
            num_tuples=1_000_000, distinct_keys=90_000,
            hot_keys=(), hot_shares=(),
        )
        assert opt.plan_for(profile, config).backend == "fpga"
        # cpu observed 10x faster than fpga: hysteresis margin cleared
        opt.observe("fpga", 100_000, 1.0)
        opt.observe("cpu", 1_000_000, 1.0)
        assert opt.plan_for(profile, config).backend == "cpu"

    def test_degenerate_observations_dropped(self):
        opt = AdaptiveOptimizer(seed=8)
        opt.observe("fpga", 0, 1.0)
        opt.observe("fpga", 100, 0.0)
        opt.observe("fpga", 100, -1.0)
        assert opt.snapshot()["observations"] == 0

    def test_margin_hysteresis_keeps_fpga(self):
        opt = AdaptiveOptimizer(seed=8, cpu_margin=1.25)
        config = pad_config()
        profile = WorkloadProfile(
            num_tuples=1_000_000, distinct_keys=90_000,
            hot_keys=(), hot_shares=(),
        )
        # cpu barely faster: inside the margin, stay on fpga
        opt.observe("fpga", 100_000, 1.0)
        opt.observe("cpu", 110_000, 1.0)
        assert opt.plan_for(profile, config).backend == "fpga"
