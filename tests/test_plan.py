"""The plan layer: fused one-pass execution ≡ the staged operators.

The heart of this file is the property test: for every chain shape the
plan layer supports, across HIST/PAD output modes, RID/VRID layouts,
serial and threaded engines, and in-memory vs spilled inputs, the
fused executor must produce **row-identical** results to the staged
materializing pipeline.  The staged path is the oracle — it is built
from the operators the rest of the suite already pins.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.exec.engine import ExecutionEngine
from repro.obs.tracing import Tracer
from repro.ops.groupby import partitioned_groupby
from repro.plan import (
    FusionDeclined,
    compile_plan,
    execute_plan,
    groupby_query,
    join_groupby_query,
    join_query,
    partition_query,
)
from repro.storage import RelationStore, SpillPartitioner
from repro.workloads.relations import Relation


def _keys(n: int, seed: int, key_space: int = 64) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, key_space, size=n, dtype=np.uint32)


def _relation(n: int, seed: int, key_space: int = 64) -> Relation:
    rng = np.random.default_rng(seed + 1)
    return Relation(
        keys=_keys(n, seed, key_space),
        payloads=rng.integers(0, 1000, size=n, dtype=np.uint32),
    )


def _assert_same_result(fused, staged, aggregate=None):
    assert fused.fused and not staged.fused
    if fused.matches is not None or staged.matches is not None:
        assert fused.matches == staged.matches
    for attr in ("r_payloads", "s_payloads", "group_keys", "group_values"):
        a, b = getattr(fused, attr), getattr(staged, attr)
        assert (a is None) == (b is None), attr
        if a is not None:
            assert np.array_equal(a, b), attr
    if aggregate is not None:
        assert fused.aggregate == staged.aggregate == aggregate


# ---------------------------------------------------------------------------
# The identity property: fused ≡ staged
# ---------------------------------------------------------------------------

MODES = [
    (OutputMode.HIST, LayoutMode.RID),
    (OutputMode.HIST, LayoutMode.VRID),
    (OutputMode.PAD, LayoutMode.RID),
    (OutputMode.PAD, LayoutMode.VRID),
]


@given(
    n_r=st.integers(min_value=20, max_value=300),
    n_s=st.integers(min_value=20, max_value=300),
    seed=st.integers(min_value=0, max_value=2**16),
    mode=st.sampled_from(MODES),
    engine_kind=st.sampled_from([None, "thread"]),
    aggregate=st.sampled_from(["sum", "count", "min", "max", "mean"]),
)
@settings(max_examples=40, deadline=None)
def test_fused_join_groupby_equals_staged(
    n_r, n_s, seed, mode, engine_kind, aggregate
):
    output_mode, layout_mode = mode
    r = _relation(n_r, seed)
    s = _relation(n_s, seed + 7)
    config = PartitionerConfig(
        num_partitions=16, output_mode=output_mode, layout_mode=layout_mode
    )
    plan = join_groupby_query(
        r,
        s,
        aggregate=aggregate,
        config=config,
        on_overflow="hist",
        collect_payloads=True,
    )
    engine = (
        ExecutionEngine(workers=2, kind="thread")
        if engine_kind == "thread"
        else None
    )
    try:
        fused = execute_plan(plan, engine=engine, fused=True)
        staged = execute_plan(plan, engine=engine, fused=False)
    finally:
        if engine is not None:
            engine.close()
    assert fused.declined is None
    _assert_same_result(fused, staged, aggregate)


@given(
    n=st.integers(min_value=10, max_value=400),
    seed=st.integers(min_value=0, max_value=2**16),
    mode=st.sampled_from(MODES),
    engine_kind=st.sampled_from([None, "thread"]),
    aggregate=st.sampled_from(["sum", "count", "min", "max", "mean"]),
)
@settings(max_examples=40, deadline=None)
def test_fused_groupby_equals_staged_and_reference(
    n, seed, mode, engine_kind, aggregate
):
    output_mode, layout_mode = mode
    keys = _keys(n, seed)
    rng = np.random.default_rng(seed + 3)
    values = rng.integers(0, 1000, size=n, dtype=np.uint32)
    config = PartitionerConfig(
        num_partitions=8, output_mode=output_mode, layout_mode=layout_mode
    )
    plan = groupby_query(
        keys, values=values, aggregate=aggregate, config=config,
        on_overflow="hist",
    )
    engine = (
        ExecutionEngine(workers=2, kind="thread")
        if engine_kind == "thread"
        else None
    )
    try:
        fused = execute_plan(plan, engine=engine, fused=True)
        staged = execute_plan(plan, engine=engine, fused=False)
    finally:
        if engine is not None:
            engine.close()
    _assert_same_result(fused, staged, aggregate)
    # and both match the library group-by on the same fan-out
    reference = partitioned_groupby(
        keys, values, aggregate=aggregate, num_partitions=8
    )
    assert np.array_equal(fused.group_keys, reference.keys)
    assert np.array_equal(fused.group_values, reference.values)


@given(
    n_r=st.integers(min_value=200, max_value=1500),
    n_s=st.integers(min_value=200, max_value=1500),
    seed=st.integers(min_value=0, max_value=2**16),
    spill_sides=st.sampled_from(["r", "s", "both"]),
    aggregate=st.sampled_from(["sum", "count"]),
)
@settings(max_examples=8, deadline=None)
def test_fused_equals_staged_with_spilled_inputs(
    n_r, n_s, seed, spill_sides, aggregate
):
    """Spilled scans stream partition-by-partition through the fused
    chain; results stay identical to materializing the spill first."""
    config = PartitionerConfig(num_partitions=16)
    r_keys = _keys(n_r, seed)
    s_keys = _keys(n_s, seed + 11)

    def _spill(keys, root: Path, name: str):
        store = RelationStore.ingest(
            keys, root / name, chunk_tuples=257
        ).seal()
        return SpillPartitioner(config, max_bytes_in_memory=2_048).run(
            store, root / f"{name}-run"
        )

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        r_in = _spill(r_keys, root, "r") if spill_sides in ("r", "both") \
            else r_keys
        s_in = _spill(s_keys, root, "s") if spill_sides in ("s", "both") \
            else s_keys
        plan = join_groupby_query(
            r_in, s_in, aggregate=aggregate, config=config,
            on_overflow="hist",
        )
        fused = execute_plan(plan, fused=True)
        staged = execute_plan(plan, fused=False)
        _assert_same_result(fused, staged, aggregate)
        spilled_names = {
            i.name for i in fused.inputs if i.spilled
        }
        expected = {"both": {"r", "s"}, "r": {"r"}, "s": {"s"}}[spill_sides]
        assert spilled_names == expected

        # groupby-only over one spill: payloads are the value column
        g_plan = groupby_query(
            _spill(s_keys, root, "g"), aggregate=aggregate
        )
        g_fused = execute_plan(g_plan, fused=True)
        g_staged = execute_plan(g_plan, fused=False)
        _assert_same_result(g_fused, g_staged, aggregate)


# ---------------------------------------------------------------------------
# Fusion rules and declines
# ---------------------------------------------------------------------------


class TestCompiler:
    def test_partition_only_plan_declines_fusion(self):
        plan = partition_query(_keys(500, 1), config=PartitionerConfig())
        with pytest.raises(FusionDeclined) as err:
            compile_plan(plan)
        assert "partition-only" in err.value.reason

    def test_declined_plan_still_executes_staged(self):
        plan = partition_query(_keys(500, 2), config=PartitionerConfig(
            num_partitions=8
        ))
        result = execute_plan(plan, fused=True)
        assert not result.fused
        assert result.declined is not None
        assert result.outputs is not None
        assert result.outputs[0].num_partitions == 8

    def test_platform_declines_fusion(self):
        from repro.platform.machine import XeonFpgaPlatform

        plan = join_query(
            _relation(100, 3), _relation(100, 4),
            config=PartitionerConfig(num_partitions=8),
        )
        with pytest.raises(FusionDeclined) as err:
            compile_plan(plan, platform=XeonFpgaPlatform())
        assert "platform" in err.value.reason

    def test_mismatched_join_configs_rejected(self):
        plan = join_query(_relation(100, 5), _relation(100, 6))
        plan = dataclasses_replace_partition(
            plan,
            PartitionerConfig(num_partitions=8),
            PartitionerConfig(num_partitions=16),
        )
        with pytest.raises(ConfigurationError, match="differently"):
            compile_plan(plan)

    def test_mixed_overflow_policies_rejected(self):
        import dataclasses

        plan = join_query(_relation(100, 7), _relation(100, 8))
        nodes = (
            dataclasses.replace(plan.partitions[0], on_overflow="hist"),
            dataclasses.replace(plan.partitions[1], on_overflow="cpu"),
        )
        plan = dataclasses.replace(plan, partitions=nodes)
        with pytest.raises(ConfigurationError, match="overflow"):
            compile_plan(plan)

    def test_spill_with_incompatible_config_rejected(self, tmp_path):
        spill_cfg = PartitionerConfig(num_partitions=16)
        store = RelationStore.ingest(
            _keys(1_000, 9), tmp_path / "s"
        ).seal()
        spill = SpillPartitioner(spill_cfg, max_bytes_in_memory=4_096).run(
            store, tmp_path / "run"
        )
        plan = groupby_query(
            spill, config=PartitionerConfig(num_partitions=64)
        )
        with pytest.raises(ConfigurationError, match="incompatible"):
            compile_plan(plan)

    def test_default_config_planned_for_cache_fit(self):
        plan = join_query(_relation(300, 10), _relation(300, 11))
        schedule = compile_plan(plan)
        from repro.optimize.optimizer import plan_fused_fanout

        assert schedule.num_partitions == plan_fused_fanout(300)

    def test_radix_config_shared_via_signature(self):
        config = PartitionerConfig(
            num_partitions=32, hash_kind=HashKind.RADIX
        )
        plan = join_query(_relation(100, 12), _relation(100, 13),
                          config=config)
        schedule = compile_plan(plan)
        assert all(
            c.hash_kind is HashKind.RADIX for c in schedule.configs
        )


def dataclasses_replace_partition(plan, cfg_r, cfg_s):
    import dataclasses

    nodes = (
        dataclasses.replace(plan.partitions[0], config=cfg_r),
        dataclasses.replace(plan.partitions[1], config=cfg_s),
    )
    return dataclasses.replace(plan, partitions=nodes)


# ---------------------------------------------------------------------------
# PAD overflow inside the fused pass
# ---------------------------------------------------------------------------


class TestFusedOverflow:
    def _skewed_plan(self, on_overflow):
        # all-equal keys overflow any PAD capacity at 16-way fan-out
        keys = np.zeros(4_096, dtype=np.uint32)
        s = _relation(512, 20)
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD
        )
        return join_groupby_query(
            Relation(keys=keys,
                     payloads=np.ones(4_096, dtype=np.uint32)),
            s, aggregate="sum", config=config, on_overflow=on_overflow,
        )

    def test_raise_policy_raises(self):
        with pytest.raises(PartitionOverflowError):
            execute_plan(self._skewed_plan("raise"), fused=True)

    def test_hist_policy_demotes_effective_mode(self):
        result = execute_plan(self._skewed_plan("hist"), fused=True)
        assert result.fused
        build = result.inputs[0]
        assert build.requested_config.output_mode is OutputMode.PAD
        assert build.config.output_mode is OutputMode.HIST
        staged = execute_plan(self._skewed_plan("hist"), fused=False)
        _assert_same_result(result, staged, "sum")

    def test_cpu_policy_flags_fallback(self):
        result = execute_plan(self._skewed_plan("cpu"), fused=True)
        assert result.inputs[0].fell_back_to_cpu


# ---------------------------------------------------------------------------
# Operator wiring: joins, group-by, service
# ---------------------------------------------------------------------------


class TestOperatorWiring:
    def test_hybrid_join_fused_equals_staged(self):
        from repro.join.hybrid_join import hybrid_join
        from repro.workloads.relations import make_workload

        wl = make_workload("A", scale=4096, seed=2)
        config = PartitionerConfig(num_partitions=64)
        staged = hybrid_join(wl, config=config, collect_payloads=True)
        fused = hybrid_join(
            wl, config=config, collect_payloads=True, fused=True
        )
        assert fused.matches == staged.matches
        assert np.array_equal(fused.r_payloads, staged.r_payloads)
        assert np.array_equal(fused.s_payloads, staged.s_payloads)
        assert fused.timing.partitioner.endswith(" fused")
        assert (
            fused.timing.partition_seconds
            == staged.timing.partition_seconds
        )

    def test_cpu_radix_join_fused_equals_staged(self):
        from repro.join.radix_join import cpu_radix_join
        from repro.workloads.relations import make_workload

        wl = make_workload("A", scale=4096, seed=5)
        staged = cpu_radix_join(wl, num_partitions=64)
        fused = cpu_radix_join(wl, num_partitions=64, fused=True)
        assert fused.matches == staged.matches
        assert "fused" in fused.timing.partitioner

    def test_partitioned_groupby_fused_flag(self):
        keys = _keys(5_000, 21)
        values = _keys(5_000, 22, key_space=1000)
        classic = partitioned_groupby(
            keys, values, aggregate="mean", num_partitions=32
        )
        fused = partitioned_groupby(
            keys, values, aggregate="mean", num_partitions=32, fused=True
        )
        assert np.array_equal(classic.keys, fused.keys)
        assert np.array_equal(classic.values, fused.values)

    def test_service_executes_plans(self):
        from repro.service.service import (
            PartitionService,
            PlanRequest,
            RequestStatus,
        )
        from repro.workloads.relations import make_workload

        wl = make_workload("A", scale=4096, seed=6)
        service = PartitionService()
        service.start()
        try:
            plan = join_groupby_query(wl.r, wl.s, aggregate="sum")
            fused_resp = service.submit_plan(plan).result(timeout=30)
            staged_resp = service.submit_plan(
                PlanRequest(plan=plan, fused=False)
            ).result(timeout=30)
        finally:
            service.stop()
        assert fused_resp.status is RequestStatus.OK
        assert fused_resp.backend == "fused"
        assert staged_resp.backend == "staged"
        assert np.array_equal(
            fused_resp.result.group_keys, staged_resp.result.group_keys
        )
        assert np.array_equal(
            fused_resp.result.group_values,
            staged_resp.result.group_values,
        )
        counters = service.metrics.snapshot()["counters"]
        assert counters["plans_submitted"] == 2
        assert counters["plans_fused"] == 1
        assert counters["plans_staged"] == 1


# ---------------------------------------------------------------------------
# Observability: per-operator spans inside the fused pass
# ---------------------------------------------------------------------------


class TestOperatorSpans:
    def test_fused_pass_emits_operator_spans(self):
        tracer = Tracer()
        plan = join_groupby_query(
            _relation(2_000, 30), _relation(2_000, 31),
            aggregate="sum", config=PartitionerConfig(num_partitions=16),
        )
        result = execute_plan(plan, tracer=tracer, fused=True)
        assert set(result.operator_stats) >= {
            "partition.histogram",
            "partition.scatter",
            "join.build_probe",
            "aggregate.reduce",
        }
        for stats in result.operator_stats.values():
            assert stats["calls"] > 0
            assert stats["busy_s"] >= 0.0
        names = {span.name for span in tracer.export()}
        assert "plan.execute" in names
        assert "op.join.build_probe" in names
        assert "op.aggregate.reduce" in names


class TestPlanValidation:
    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ConfigurationError, match="aggregate"):
            groupby_query(_keys(10, 40), aggregate="median")

    def test_values_only_for_groupby_plans(self):
        import dataclasses

        plan = join_query(_relation(10, 41), _relation(10, 42))
        with pytest.raises(ConfigurationError, match="values"):
            dataclasses.replace(
                plan, values=np.ones(10, dtype=np.uint32)
            )

    def test_relation_source_uses_payloads_as_values(self):
        rel = _relation(500, 43)
        plan = groupby_query(rel, aggregate="sum")
        result = execute_plan(plan, fused=True)
        reference = partitioned_groupby(
            rel.keys, rel.payloads, aggregate="sum",
            num_partitions=result.num_partitions,
        )
        assert np.array_equal(result.group_keys, reference.keys)
        assert np.array_equal(result.group_values, reference.values)
