"""Tests for the verification module (repro.analysis.verify)."""

import numpy as np
import pytest

from repro.analysis.verify import (
    VerificationError,
    verify_join_pairs,
    verify_partitioning,
)
from repro.core.modes import HashKind, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.cpu.partitioner import CpuPartitioner
from repro.join.hash_table import BucketChainingHashTable


class TestVerifyPartitioning:
    def test_good_fpga_output_passes(self, small_keys, small_payloads):
        out = FpgaPartitioner(
            PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        ).partition(small_keys, small_payloads)
        report = verify_partitioning(out, small_keys, small_payloads)
        assert report.ok
        assert report.checks_run >= 3
        report.raise_on_failure()  # no-op on success

    def test_good_cpu_output_passes(self, small_keys, small_payloads):
        out = CpuPartitioner(num_partitions=16).partition(
            small_keys, small_payloads
        )
        assert verify_partitioning(out, small_keys, small_payloads).ok

    def test_pad_output_passes(self, small_keys, small_payloads):
        out = FpgaPartitioner(
            PartitionerConfig(
                num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=256
            )
        ).partition(small_keys, small_payloads)
        report = verify_partitioning(out, small_keys, small_payloads)
        assert report.ok
        assert report.checks_run == 4  # includes the capacity check

    def test_detects_dropped_tuple(self, small_keys, small_payloads):
        out = FpgaPartitioner(
            PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        ).partition(small_keys, small_payloads)
        out.partition_payloads[3] = out.partition_payloads[3][:-1]
        out.partition_keys[3] = out.partition_keys[3][:-1]
        report = verify_partitioning(out, small_keys, small_payloads)
        assert not report.ok
        assert "permutation" in report.failures[0]

    def test_detects_misplaced_tuple(self, small_keys, small_payloads):
        out = FpgaPartitioner(
            PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        ).partition(small_keys, small_payloads)
        # move one tuple to a (very likely) wrong partition
        donor = max(range(16), key=lambda p: out.counts[p])
        victim_key = out.partition_keys[donor][0:1]
        victim_pay = out.partition_payloads[donor][0:1]
        out.partition_keys[donor] = out.partition_keys[donor][1:]
        out.partition_payloads[donor] = out.partition_payloads[donor][1:]
        target = (donor + 1) % 16
        out.partition_keys[target] = np.concatenate(
            [out.partition_keys[target], victim_key]
        )
        out.partition_payloads[target] = np.concatenate(
            [out.partition_payloads[target], victim_pay]
        )
        report = verify_partitioning(out, small_keys, small_payloads)
        assert not report.ok
        assert any("belong elsewhere" in f for f in report.failures)

    def test_raise_on_failure(self, small_keys, small_payloads):
        out = FpgaPartitioner(
            PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        ).partition(small_keys, small_payloads)
        out.partition_keys[0] = out.partition_keys[0][:0]
        out.partition_payloads[0] = out.partition_payloads[0][:0]
        with pytest.raises(VerificationError):
            verify_partitioning(
                out, small_keys, small_payloads
            ).raise_on_failure()

    def test_radix_config_verified_with_radix_function(self):
        keys = np.arange(256, dtype=np.uint32)
        out = FpgaPartitioner(
            PartitionerConfig(
                num_partitions=16,
                output_mode=OutputMode.HIST,
                hash_kind=HashKind.RADIX,
            )
        ).partition(keys, np.arange(256, dtype=np.uint32))
        assert verify_partitioning(out, keys).ok


class TestVerifyJoinPairs:
    def test_sound_join_passes(self, rng):
        r = rng.integers(0, 100, 200, dtype=np.uint64).astype(np.uint32)
        s = rng.integers(0, 100, 200, dtype=np.uint64).astype(np.uint32)
        probe_idx, build_idx, _ = BucketChainingHashTable(r).probe(s)
        report = verify_join_pairs(r, s, build_idx, probe_idx)
        assert report.ok

    def test_unsound_pair_detected(self):
        r = np.array([1, 2], dtype=np.uint32)
        s = np.array([1, 3], dtype=np.uint32)
        report = verify_join_pairs(
            r, s,
            np.array([0, 1]), np.array([0, 1]),  # (2,3) is bogus
        )
        assert not report.ok

    def test_completeness_check(self):
        r = np.array([5], dtype=np.uint32)
        s = np.array([5, 5], dtype=np.uint32)
        report = verify_join_pairs(
            r, s, np.array([0]), np.array([0]), expected_matches=2
        )
        assert not report.ok
        assert "expected" in report.failures[0]
