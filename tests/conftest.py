"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PartitionerConfig
from repro.core.modes import HashKind, LayoutMode, OutputMode


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_keys(rng):
    """A few hundred random uint32 keys."""
    return rng.integers(0, 2**32, size=400, dtype=np.uint64).astype(np.uint32)


@pytest.fixture
def small_payloads(small_keys):
    return np.arange(small_keys.shape[0], dtype=np.uint32)


@pytest.fixture
def pad_config():
    """A small PAD/RID configuration suitable for cycle simulation."""
    return PartitionerConfig(
        num_partitions=16,
        output_mode=OutputMode.PAD,
        layout_mode=LayoutMode.RID,
        hash_kind=HashKind.MURMUR,
        pad_tuples=128,
    )


@pytest.fixture
def hist_config():
    return PartitionerConfig(
        num_partitions=16,
        output_mode=OutputMode.HIST,
        layout_mode=LayoutMode.RID,
        hash_kind=HashKind.MURMUR,
    )


def assert_same_partitions(left_keys, right_keys):
    """Partition contents must agree as multisets."""
    assert len(left_keys) == len(right_keys)
    for p, (a, b) in enumerate(zip(left_keys, right_keys)):
        assert sorted(map(int, a)) == sorted(map(int, b)), f"partition {p}"
