"""Tests for the functional FpgaPartitioner (the public API)."""

import numpy as np
import pytest

from repro import (
    FpgaPartitioner,
    PartitionerConfig,
    PartitionOverflowError,
    XeonFpgaPlatform,
)
from repro.core.modes import HashKind, LayoutMode, OutputMode
from repro.core.hashing import partition_of
from repro.errors import ConfigurationError
from repro.workloads.relations import make_relation


class TestBasicPartitioning:
    def test_every_tuple_lands_in_its_partition(self, small_keys, small_payloads):
        config = PartitionerConfig(num_partitions=32, output_mode=OutputMode.HIST)
        out = FpgaPartitioner(config).partition(small_keys, small_payloads)
        for p in range(32):
            keys, _ = out.partition(p)
            if keys.size:
                assert np.all(
                    np.asarray(partition_of(keys, 32, True)) == p
                )

    def test_nothing_lost(self, small_keys, small_payloads):
        config = PartitionerConfig(num_partitions=32, output_mode=OutputMode.HIST)
        out = FpgaPartitioner(config).partition(small_keys, small_payloads)
        assert out.num_tuples == small_keys.shape[0]
        all_payloads = np.concatenate(out.partition_payloads)
        assert sorted(map(int, all_payloads)) == list(
            range(small_keys.shape[0])
        )

    def test_accepts_relation_objects(self):
        rel = make_relation(500, "random", seed=3)
        out = FpgaPartitioner(
            PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        ).partition(rel)
        assert out.num_tuples == 500

    def test_counts_match_partition_sizes(self, small_keys, small_payloads):
        config = PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        out = FpgaPartitioner(config).partition(small_keys, small_payloads)
        for p in range(16):
            assert out.counts[p] == out.partition_keys[p].shape[0]

    def test_empty_relation_rejected(self):
        with pytest.raises(ConfigurationError):
            FpgaPartitioner(PartitionerConfig(num_partitions=16)).partition(
                np.empty(0, dtype=np.uint32)
            )

    def test_reserved_payload_rejected(self):
        keys = np.array([1, 2], dtype=np.uint32)
        payloads = np.array([0, 0xFFFFFFFF], dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            FpgaPartitioner(
                PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
            ).partition(keys, payloads)


class TestTrafficAccounting:
    def make_out(self, output_mode, layout_mode, n=4096):
        keys = np.arange(1, n + 1, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=output_mode,
            layout_mode=layout_mode,
            pad_tuples=n,
        )
        return FpgaPartitioner(config).partition(keys)

    def test_hist_rid_reads_twice(self):
        out = self.make_out(OutputMode.HIST, LayoutMode.RID)
        assert out.bytes_read == 2 * out.num_tuples * 8

    def test_pad_rid_reads_once(self):
        out = self.make_out(OutputMode.PAD, LayoutMode.RID)
        assert out.bytes_read == out.num_tuples * 8

    def test_vrid_reads_keys_only(self):
        out = self.make_out(OutputMode.PAD, LayoutMode.VRID)
        assert out.bytes_read == out.num_tuples * 4

    def test_writes_include_dummy_padding(self):
        out = self.make_out(OutputMode.HIST, LayoutMode.RID)
        assert out.bytes_written == (out.num_tuples + out.dummy_slots) * 8
        assert out.bytes_written >= out.num_tuples * 8

    def test_realised_ratio_near_mode_ratio(self):
        out = self.make_out(OutputMode.HIST, LayoutMode.RID, n=65536)
        assert out.read_write_ratio == pytest.approx(2.0, rel=0.1)

    def test_padding_fraction_small_for_large_runs(self):
        out = self.make_out(OutputMode.HIST, LayoutMode.RID, n=65536)
        assert out.padding_fraction < 0.05


class TestVridSemantics:
    def test_vrid_payloads_are_positions(self, rng):
        keys = rng.integers(0, 2**32, size=300, dtype=np.uint64).astype(
            np.uint32
        )
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.HIST,
            layout_mode=LayoutMode.VRID,
        )
        out = FpgaPartitioner(config).partition(keys)
        for p_keys, p_vrids in zip(out.partition_keys, out.partition_payloads):
            for k, vrid in zip(p_keys, p_vrids):
                assert keys[int(vrid)] == k  # VRID materialises the key


class TestPadOverflow:
    def overflow_setup(self):
        # everything hashes radix-style into partition 0
        keys = np.zeros(1024, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.PAD,
            hash_kind=HashKind.RADIX,
            pad_tuples=8,
        )
        return keys, config

    def test_raise_policy(self):
        keys, config = self.overflow_setup()
        with pytest.raises(PartitionOverflowError) as excinfo:
            FpgaPartitioner(config).partition(keys)
        assert excinfo.value.partition == 0

    def test_hist_fallback(self):
        keys, config = self.overflow_setup()
        out = FpgaPartitioner(config).partition(keys, on_overflow="hist")
        assert out.config.output_mode is OutputMode.HIST
        assert out.num_tuples == 1024
        # the aborted PAD scan is charged on top of the HIST traffic
        assert out.bytes_read == 3 * 1024 * 8

    def test_cpu_fallback(self):
        keys, config = self.overflow_setup()
        out = FpgaPartitioner(config).partition(keys, on_overflow="cpu")
        assert out.fell_back_to_cpu
        assert out.produced_by == "cpu"
        assert out.num_tuples == 1024

    def test_unknown_policy(self):
        keys, config = self.overflow_setup()
        with pytest.raises(ConfigurationError):
            FpgaPartitioner(config).partition(keys, on_overflow="shrug")

    def test_no_overflow_on_balanced_input(self):
        keys = np.arange(1024, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, hash_kind=HashKind.RADIX
        )
        out = FpgaPartitioner(config).partition(keys)
        assert out.num_tuples == 1024


class TestPlatformAccounting:
    def test_traffic_lands_on_qpi_counters(self, small_keys, small_payloads):
        platform = XeonFpgaPlatform()
        config = PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        partitioner = FpgaPartitioner(config, platform=platform)
        out = partitioner.partition(
            small_keys, small_payloads, region_name="parts"
        )
        assert platform.qpi.bytes_read == out.bytes_read
        assert platform.qpi.bytes_written == out.bytes_written

    def test_region_marked_fpga_written(self, small_keys, small_payloads):
        platform = XeonFpgaPlatform()
        config = PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        FpgaPartitioner(config, platform=platform).partition(
            small_keys, small_payloads, region_name="parts"
        )
        penalty = platform.coherence.cpu_read_penalty("parts", random_access=True)
        assert penalty > 2.0  # Table 1 random-read factor


class TestLaneAccounting:
    def test_lines_at_least_ceil_counts(self, small_keys, small_payloads):
        config = PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        out = FpgaPartitioner(config).partition(small_keys, small_payloads)
        per_line = config.tuples_per_line
        for p in range(16):
            min_lines = -(-int(out.counts[p]) // per_line)
            assert out.lines_per_partition[p] >= min_lines
            assert out.lines_per_partition[p] <= min_lines + config.num_lanes
