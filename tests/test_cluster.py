"""Tests for the sharded partition cluster (repro.cluster).

Four layers:

1. ring properties — bounded key movement on join/leave, disjoint
   replica sets, seed determinism;
2. placement — heavy-hitter replication spreads hot partitions and
   reduces max/mean shard load under Zipf counts;
3. the router's byte-identity invariant — a hypothesis sweep across
   HIST/PAD x RID/VRID, including an injected shard failure and a
   forced spill handoff inside the property;
4. operational behaviour — failover on a killed shard, rejection ->
   handoff, degradation passthrough, Prometheus shard labels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ConsistentHashRing,
    PlacementPolicy,
    ShardNode,
    ShardRouter,
    shard_config,
)
from repro.cluster.router import _ClusterColumn
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.workloads.relations import Relation, make_relation


def _relation(n: int, seed: int = 0, distribution: str = "zipf") -> Relation:
    return make_relation(n, distribution, seed=seed)


def _assert_identical(cluster_out, single_out, num_partitions: int):
    assert np.array_equal(cluster_out.counts, single_out.counts)
    assert np.array_equal(
        cluster_out.lines_per_partition, single_out.lines_per_partition
    )
    assert np.array_equal(cluster_out.base_lines, single_out.base_lines)
    assert cluster_out.bytes_read == single_out.bytes_read
    assert cluster_out.bytes_written == single_out.bytes_written
    assert cluster_out.dummy_slots == single_out.dummy_slots
    for p in range(num_partitions):
        ck, cp = cluster_out.partition(p)
        sk, sp = single_out.partition(p)
        assert np.array_equal(ck, sk), f"partition {p} keys diverged"
        assert np.array_equal(cp, sp), f"partition {p} payloads diverged"


# ---------------------------------------------------------------------------
# 1. Consistent-hash ring
# ---------------------------------------------------------------------------


class TestRing:
    def test_every_partition_owned(self):
        ring = ConsistentHashRing(["a", "b", "c"], virtual_nodes=64)
        owners = ring.owners(1024)
        assert owners.shape == (1024,)
        assert set(np.unique(owners)) <= {0, 1, 2}
        # with 64 vnodes each shard owns a nontrivial share
        shares = np.bincount(owners, minlength=3) / 1024
        assert shares.min() > 0.05

    def test_deterministic_under_seed(self):
        a = ConsistentHashRing(["x", "y", "z"], seed=7)
        b = ConsistentHashRing(["x", "y", "z"], seed=7)
        c = ConsistentHashRing(["x", "y", "z"], seed=8)
        assert np.array_equal(a.owners(512), b.owners(512))
        assert not np.array_equal(a.owners(512), c.owners(512))

    def test_join_moves_only_to_new_shard(self):
        P = 4096
        ring = ConsistentHashRing(["s0", "s1", "s2"], virtual_nodes=64)
        before = ring.owners(P).copy()
        before_ids = [ring.shard_ids[i] for i in before]
        ring.add_shard("s3")
        after = ring.owners(P)
        after_ids = [ring.shard_ids[i] for i in after]
        moved = [
            (b, a) for b, a in zip(before_ids, after_ids) if b != a
        ]
        # every move lands on the joining shard...
        assert all(a == "s3" for _, a in moved)
        # ...and the moved fraction is near the ideal 1/4 (within 2x)
        assert len(moved) / P <= 2.0 / 4

    def test_leave_moves_only_from_leaving_shard(self):
        P = 4096
        ring = ConsistentHashRing(
            ["s0", "s1", "s2", "s3"], virtual_nodes=64
        )
        before_ids = [ring.shard_ids[i] for i in ring.owners(P)]
        ring.remove_shard("s1")
        after_ids = [ring.shard_ids[i] for i in ring.owners(P)]
        moved = [
            (b, a) for b, a in zip(before_ids, after_ids) if b != a
        ]
        assert all(b == "s1" for b, _ in moved)
        assert len(moved) / P <= 2.0 / 4

    def test_preference_sets_disjoint(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=32)
        for p in range(128):
            pref = ring.preference(p, 128)
            assert len(pref) == len(set(pref)) == 4
            # primary is first
            assert ring.shard_ids[pref[0]] == ring.owner_of(p, 128)

    def test_refuses_degenerate_rings(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([])
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(["a", "a"])
        ring = ConsistentHashRing(["only"])
        with pytest.raises(ConfigurationError):
            ring.remove_shard("only")


# ---------------------------------------------------------------------------
# 2. Placement
# ---------------------------------------------------------------------------


class TestPlacement:
    def test_hot_partitions_spread(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=64)
        P = 64
        counts = np.ones(P, dtype=np.int64)
        counts[:4] = 10_000  # four heavy partitions
        plain = np.bincount(
            ring.owners(P), weights=counts.astype(np.float64), minlength=4
        )
        policy = PlacementPolicy(replicas=3)
        plan = policy.place(counts, ring)
        placed = np.bincount(
            plan.owner, weights=counts.astype(np.float64), minlength=4
        )
        assert placed.max() <= plain.max()
        assert plan.replicated_partitions >= 0

    def test_zipf_imbalance_reduced(self):
        ring = ConsistentHashRing(
            [f"s{i}" for i in range(4)], virtual_nodes=64
        )
        rel = _relation(200_000, seed=3)
        cfg = PartitionerConfig(num_partitions=64)
        from repro import kernels

        _, counts, _ = kernels.hash_histogram(
            np.ascontiguousarray(rel.keys, dtype=np.uint32),
            64,
            cfg.uses_hash,
        )
        counts = counts.astype(np.int64)
        plain = np.bincount(
            ring.owners(64), weights=counts.astype(np.float64), minlength=4
        )
        plan = PlacementPolicy(replicas=3).place(counts, ring)
        placed = np.bincount(
            plan.owner, weights=counts.astype(np.float64), minlength=4
        )
        assert placed.max() / placed.mean() <= plain.max() / plain.mean()

    def test_clustered_zipf_keys_feed_sketch(self):
        """Regression: the sketch sample must not alias with run-length-
        clustered input.

        The old strided sampler (``keys[::stride]``) drew only stream
        positions congruent to 0 mod stride; with hot-key runs laid out
        off that grid it never saw the dominant key at all.  A seeded
        uniform sample sees it in proportion to its true share.
        """
        from repro.cluster.placement import _SKETCH_SAMPLE

        rng = np.random.default_rng(11)
        stride = 16  # what a strided sampler uses at this input size
        n = _SKETCH_SAMPLE * stride
        # One dominant key (~15/16 of the stream) in long runs, with
        # run-length-clustered Zipf cold keys sitting exactly on the
        # stride grid — the adversarial layout for strided sampling.
        keys = np.full(n, 7, dtype=np.uint32)
        cold = np.sort(
            (rng.zipf(1.5, size=n // stride) % 50_000 + 1_000).astype(
                np.uint32
            )
        )
        keys[::stride] = cold
        policy = PlacementPolicy(replicas=2, sketch_capacity=8)
        policy.observe_keys(keys)
        counters = policy.sketch.counters
        assert counters, "sketch saw no keys"
        top = max(counters, key=counters.get)
        assert top == 7
        assert counters[7] / _SKETCH_SAMPLE > 0.5

    def test_sketch_sampling_is_seed_deterministic(self):
        keys = np.random.default_rng(2).integers(
            0, 1 << 20, size=200_000
        ).astype(np.uint32)
        a = PlacementPolicy(sample_seed=42)
        b = PlacementPolicy(sample_seed=42)
        a.observe_keys(keys)
        b.observe_keys(keys)
        assert a.sketch.counters == b.sketch.counters


# ---------------------------------------------------------------------------
# 3. Byte-identity property
# ---------------------------------------------------------------------------


MODES = [
    (OutputMode.HIST, LayoutMode.RID),
    (OutputMode.HIST, LayoutMode.VRID),
    (OutputMode.PAD, LayoutMode.RID),
    (OutputMode.PAD, LayoutMode.VRID),
]


class TestByteIdentity:
    @pytest.mark.parametrize("output_mode,layout_mode", MODES)
    def test_all_modes_identical(self, output_mode, layout_mode):
        cfg = PartitionerConfig(
            num_partitions=32,
            output_mode=output_mode,
            layout_mode=layout_mode,
        )
        rel = _relation(30_000, seed=5)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        with ShardRouter(3, seed=1) as router:
            resp = router.partition(rel, config=cfg, on_overflow="hist")
        assert resp.ok
        assert resp.output.produced_by == "cluster"
        _assert_identical(resp.output, single, 32)

    @settings(max_examples=12, deadline=None)
    @given(
        mode=st.sampled_from(MODES),
        n=st.integers(min_value=64, max_value=8_000),
        seed=st.integers(min_value=0, max_value=2**16),
        distribution=st.sampled_from(["random", "zipf", "linear"]),
        kill=st.booleans(),
        handoff=st.booleans(),
    )
    def test_identity_survives_failure_and_handoff(
        self, mode, n, seed, distribution, kill, handoff
    ):
        output_mode, layout_mode = mode
        cfg = PartitionerConfig(
            num_partitions=16,
            output_mode=output_mode,
            layout_mode=layout_mode,
        )
        rel = make_relation(n, distribution, seed=seed)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        router = ShardRouter(
            3,
            seed=seed % 4,
            handoff_tuples=max(8, n // 6) if handoff else None,
        )
        with router:
            if kill:
                router.kill_shard(router.nodes[seed % 3].shard_id)
            resp = router.partition(rel, config=cfg, on_overflow="hist")
        assert resp.ok, resp.error
        _assert_identical(resp.output, single, 16)
        if handoff:
            assert resp.handoffs >= 1

    def test_explicit_payloads_identical(self):
        cfg = PartitionerConfig(num_partitions=16)
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 2**32, size=5000, dtype=np.uint64).astype(
            np.uint32
        )
        pays = np.arange(5000, dtype=np.uint32) * 3
        single = FpgaPartitioner(cfg).partition(keys, payloads=pays)
        with ShardRouter(2, seed=0) as router:
            resp = router.partition(keys, payloads=pays, config=cfg)
        assert resp.ok
        _assert_identical(resp.output, single, 16)


# ---------------------------------------------------------------------------
# 4. Overflow policies
# ---------------------------------------------------------------------------


def _skewed_relation(n: int = 16_000) -> Relation:
    return Relation(
        keys=np.zeros(n, dtype=np.uint32),
        payloads=np.arange(n, dtype=np.uint32),
        tuple_bytes=8,
        name="all-one-key",
    )


class TestOverflow:
    def test_raise_policy(self):
        cfg = PartitionerConfig(
            num_partitions=32, output_mode=OutputMode.PAD
        )
        with ShardRouter(3, seed=1) as router:
            with pytest.raises(PartitionOverflowError):
                router.partition(
                    _skewed_relation(), config=cfg, on_overflow="raise"
                )

    def test_hist_downgrade_matches_single_node(self):
        cfg = PartitionerConfig(
            num_partitions=32, output_mode=OutputMode.PAD
        )
        rel = _skewed_relation()
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        with ShardRouter(3, seed=1) as router:
            resp = router.partition(rel, config=cfg, on_overflow="hist")
        assert resp.ok
        assert resp.output.config.output_mode is OutputMode.HIST
        _assert_identical(resp.output, single, 32)

    def test_cpu_fallback_matches_single_node(self):
        cfg = PartitionerConfig(
            num_partitions=32, output_mode=OutputMode.PAD
        )
        rel = _skewed_relation()
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="cpu")
        with ShardRouter(3, seed=1) as router:
            resp = router.partition(rel, config=cfg, on_overflow="cpu")
        assert resp.ok
        assert resp.degraded
        assert resp.output.fell_back_to_cpu
        _assert_identical(resp.output, single, 32)


# ---------------------------------------------------------------------------
# 5. Failover, handoff, operations
# ---------------------------------------------------------------------------


class TestFailover:
    def test_killed_shard_routes_around(self):
        cfg = PartitionerConfig(num_partitions=32)
        rel = _relation(20_000, seed=2)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        with ShardRouter(3, seed=1) as router:
            victim = router.nodes[1].shard_id
            router.kill_shard(victim)
            resp = router.partition(rel, config=cfg)
            assert resp.ok
            _assert_identical(resp.output, single, 32)
            assert victim not in set(
                s for s in resp.shard_of_partition if s
            )

    def test_kill_between_requests(self):
        cfg = PartitionerConfig(num_partitions=32)
        rel = _relation(20_000, seed=4)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        with ShardRouter(3, seed=2) as router:
            first = router.partition(rel, config=cfg)
            assert first.ok
            router.kill_shard(router.nodes[0].shard_id)
            second = router.partition(rel, config=cfg)
            assert second.ok
            _assert_identical(second.output, single, 32)

    def test_all_shards_dead_fails_cleanly(self):
        cfg = PartitionerConfig(num_partitions=16)
        rel = _relation(1_000, seed=1)
        with ShardRouter(2, seed=0) as router:
            for node in router.nodes:
                router.kill_shard(node.shard_id)
            resp = router.partition(rel, config=cfg)
            assert not resp.ok
            assert resp.error is not None

    def test_rejection_triggers_handoff(self):
        # shard "tiny" rejects every admission (its queue reports full),
        # so its slice comes back REJECTED; the router must hand the
        # slice off to a peer's storage instead of failing the request
        nodes = [ShardNode("tiny"), ShardNode("big-0"), ShardNode("big-1")]
        cfg = PartitionerConfig(num_partitions=32)
        rel = _relation(20_000, seed=6)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        with ShardRouter(nodes, seed=1) as router:
            tiny = router.node("tiny")
            tiny.service.queue.offer = lambda *a, **kw: False
            resp = router.partition(rel, config=cfg)
            assert resp.ok
            assert resp.handoffs >= 1
            assert "handoff" in resp.backends
            _assert_identical(resp.output, single, 32)
            assert router.node("tiny").stats.rejections >= 1

    def test_handoff_threshold_spills_to_peer(self):
        cfg = PartitionerConfig(num_partitions=32)
        rel = _relation(20_000, seed=7)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        with ShardRouter(3, seed=1, handoff_tuples=64) as router:
            resp = router.partition(rel, config=cfg)
            assert resp.ok
            assert resp.handoffs >= 1
            _assert_identical(resp.output, single, 32)
            snap = router.snapshot()
            total_in = sum(
                s["shard"]["handoffs_in"]
                for s in snap["shards"].values()
            )
            assert total_in == resp.handoffs

    def test_degradation_passthrough(self):
        from repro.service import DegradationPolicy, FaultInjector

        cfg = PartitionerConfig(num_partitions=16)
        rel = _relation(10_000, seed=8)
        single = FpgaPartitioner(cfg).partition(rel, on_overflow="hist")
        nodes = [
            ShardNode(
                f"s{i}",
                service_kwargs={
                    "policy": DegradationPolicy(
                        fault_injector=FaultInjector(
                            fail_rate=1.0, seed=i
                        )
                    )
                },
            )
            for i in range(2)
        ]
        with ShardRouter(nodes, seed=0) as router:
            resp = router.partition(rel, config=cfg)
        assert resp.ok
        # every shard fell back to CPU; output must still be identical
        assert resp.degraded
        assert resp.degrade_reasons
        _assert_identical(resp.output, single, 16)


class TestObservability:
    def test_prometheus_shard_labels(self):
        cfg = PartitionerConfig(num_partitions=16)
        with ShardRouter(2, seed=3) as router:
            router.partition(_relation(5_000, seed=1), config=cfg)
            page = router.prometheus()
        assert 'shard="shard-0"' in page
        assert 'shard="shard-1"' in page
        assert "repro_cluster_requests_total 1" in page
        assert "repro_cluster_completed_total 1" in page

    def test_snapshot_shape(self):
        with ShardRouter(2, seed=3) as router:
            router.partition(
                _relation(5_000, seed=1),
                config=PartitionerConfig(num_partitions=16),
            )
            snap = router.snapshot()
        assert snap["router"]["requests"] == 1
        assert snap["ring"]["shards"] == ["shard-0", "shard-1"]
        for shard in snap["shards"].values():
            assert shard["shard"]["alive"] in (True, False)

    def test_cluster_spans_emitted(self):
        from repro.obs import Tracer

        tracer = Tracer()
        cfg = PartitionerConfig(num_partitions=16)
        with ShardRouter(2, seed=0, tracer=tracer) as router:
            router.partition(_relation(4_000, seed=2), config=cfg)
        names = {span.name for span in tracer.export()}
        assert "cluster.partition" in names
        assert "cluster.route" in names
        assert "cluster.assemble" in names


class TestClusterColumn:
    def test_dispatch_and_overrides(self):
        col = _ClusterColumn(
            [None, {1: np.array([5, 6], dtype=np.uint32)}],
            np.array([0, 2], dtype=np.int64),
        )
        assert len(col) == 2
        assert col[0].shape == (0,)
        assert np.array_equal(col[1], [5, 6])
        col[1] = np.array([9], dtype=np.uint32)
        assert np.array_equal(col[1], [9])
        assert np.array_equal(col[-1], [9])
        with pytest.raises(IndexError):
            col[2]


class TestShardConfig:
    def test_clone_is_hist_rid(self):
        cfg = PartitionerConfig(
            num_partitions=128,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.VRID,
        )
        clone = shard_config(cfg)
        assert clone.output_mode is OutputMode.HIST
        assert clone.layout_mode is LayoutMode.RID
        assert clone.num_partitions == cfg.num_partitions
        assert clone.uses_hash == cfg.uses_hash
