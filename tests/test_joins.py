"""End-to-end join tests (Section 5)."""

import numpy as np
import pytest

from repro import (
    PartitionerConfig,
    cpu_radix_join,
    hybrid_join,
    make_workload,
)
from repro.core.modes import HashKind, LayoutMode, OutputMode
from repro.workloads.relations import Workload

PAPER_N = 128 * 10**6


def small_workload(name, scale=200000):
    return make_workload(name, scale=scale)


class TestCorrectness:
    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "E"])
    def test_cpu_join_finds_all_matches(self, name):
        wl = small_workload(name)
        result = cpu_radix_join(wl, num_partitions=64, threads=4)
        expected = _reference_match_count(wl)
        assert result.matches == expected

    @pytest.mark.parametrize("name", ["A", "C", "D"])
    def test_hybrid_matches_cpu(self, name):
        wl = small_workload(name)
        cpu = cpu_radix_join(wl, num_partitions=64, threads=4)
        hybrid = hybrid_join(
            wl, PartitionerConfig(num_partitions=64), threads=4
        )
        assert hybrid.matches == cpu.matches

    def test_hash_vs_radix_same_matches(self):
        wl = small_workload("E")
        radix = cpu_radix_join(
            wl, num_partitions=64, threads=2, hash_kind=HashKind.RADIX
        )
        hashed = cpu_radix_join(
            wl, num_partitions=64, threads=2, hash_kind=HashKind.MURMUR
        )
        assert radix.matches == hashed.matches

    def test_payload_collection(self):
        wl = small_workload("A")
        result = cpu_radix_join(
            wl, num_partitions=64, threads=1, collect_payloads=True
        )
        assert result.r_payloads.shape[0] == result.matches
        # payloads are positions; every matched pair must share its key
        r_keys = wl.r.keys[result.r_payloads]
        s_keys = wl.s.keys[result.s_payloads]
        assert np.array_equal(r_keys, s_keys)


class TestHybridTimingShapes:
    def test_hybrid_build_probe_slower_than_cpu(self):
        """Section 2.2 / Figure 10: the coherence penalty."""
        wl = small_workload("A")
        cpu = cpu_radix_join(
            wl, 8192, threads=10,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        hybrid = hybrid_join(
            wl, PartitionerConfig(num_partitions=8192), threads=10,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        assert (
            hybrid.timing.build_probe_seconds
            > cpu.timing.build_probe_seconds
        )

    def test_workload_a_anchors(self):
        """The Section 5.2 numbers: hybrid ~406 vs CPU ~436 Mtuples/s
        at 10 threads (we land within a few percent)."""
        wl = small_workload("A")
        cpu = cpu_radix_join(
            wl, 8192, threads=10,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        hybrid = hybrid_join(
            wl,
            PartitionerConfig(
                num_partitions=8192,
                output_mode=OutputMode.PAD,
                layout_mode=LayoutMode.VRID,
            ),
            threads=10,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        assert cpu.throughput_mtuples == pytest.approx(436, rel=0.05)
        assert hybrid.throughput_mtuples == pytest.approx(406, rel=0.05)
        assert hybrid.throughput_mtuples < cpu.throughput_mtuples

    def test_fpga_partitioning_flat_across_fanout(self):
        """Figure 10: 'FPGA partitioning delivers the same performance
        regardless of the number of partitions'."""
        wl = small_workload("A")
        times = []
        for partitions in (256, 1024, 8192):
            result = hybrid_join(
                wl,
                PartitionerConfig(num_partitions=partitions),
                threads=1,
                timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
            )
            times.append(result.timing.partition_seconds)
        assert max(times) == pytest.approx(min(times), rel=0.01)

    def test_cpu_single_thread_partitioning_grows_with_fanout(self):
        wl = small_workload("A")
        few = cpu_radix_join(
            wl, 256, threads=1,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        many = cpu_radix_join(
            wl, 8192, threads=1,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        assert many.timing.partition_seconds > few.timing.partition_seconds

    def test_vrid_partitioning_fastest(self):
        wl = small_workload("A")
        times = {}
        for layout in (LayoutMode.RID, LayoutMode.VRID):
            result = hybrid_join(
                wl,
                PartitionerConfig(
                    num_partitions=8192,
                    output_mode=OutputMode.PAD,
                    layout_mode=layout,
                ),
                threads=10,
                timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
            )
            times[layout] = result.timing.partition_seconds
        assert times[LayoutMode.VRID] < times[LayoutMode.RID]


class TestSkewHandling:
    def make_skewed(self, zipf):
        return make_workload("A", scale=200000, skew_s_zipf=zipf)

    def test_pad_overflows_into_hist_retry(self):
        """Section 5.4: PAD fails above ~0.25 Zipf and HIST takes
        over."""
        wl = self.make_skewed(1.0)
        result = hybrid_join(
            wl,
            PartitionerConfig(
                num_partitions=64, output_mode=OutputMode.PAD, pad_tuples=16
            ),
            threads=4,
            on_overflow="hist",
        )
        assert not result.fell_back_to_cpu
        assert "HIST" in result.timing.partitioner
        assert result.matches == _reference_match_count(wl)

    def test_cpu_fallback_policy(self):
        wl = self.make_skewed(1.5)
        result = hybrid_join(
            wl,
            PartitionerConfig(
                num_partitions=64, output_mode=OutputMode.PAD, pad_tuples=16
            ),
            threads=4,
            on_overflow="cpu",
        )
        assert result.fell_back_to_cpu
        assert result.matches == _reference_match_count(wl)

    def test_hist_mode_handles_any_skew_directly(self):
        wl = self.make_skewed(1.75)
        result = hybrid_join(
            wl,
            PartitionerConfig(num_partitions=64, output_mode=OutputMode.HIST),
            threads=4,
        )
        assert result.matches == _reference_match_count(wl)
        assert not result.fell_back_to_cpu

    def test_mild_skew_keeps_pad(self):
        wl = self.make_skewed(0.1)
        result = hybrid_join(
            wl,
            PartitionerConfig(num_partitions=64, output_mode=OutputMode.PAD),
            threads=4,
            on_overflow="hist",
        )
        assert "PAD" in result.timing.partitioner


class TestTimingContainer:
    def test_throughput_definition(self):
        wl = small_workload("A")
        result = cpu_radix_join(wl, 64, threads=1)
        timing = result.timing
        expected = timing.total_tuples / timing.total_seconds / 1e6
        assert timing.throughput_mtuples == pytest.approx(expected)

    def test_scaled_to(self):
        wl = small_workload("A")
        result = cpu_radix_join(wl, 64, threads=1)
        scaled = result.timing.scaled_to(PAPER_N, PAPER_N)
        assert scaled.total_seconds > result.timing.total_seconds
        assert scaled.r_tuples == PAPER_N


def _reference_match_count(wl: Workload) -> int:
    """NumPy reference equi-join cardinality."""
    r_keys, r_counts = np.unique(wl.r.keys, return_counts=True)
    s_keys, s_counts = np.unique(wl.s.keys, return_counts=True)
    common, r_idx, s_idx = np.intersect1d(
        r_keys, s_keys, assume_unique=True, return_indices=True
    )
    return int((r_counts[r_idx] * s_counts[s_idx]).sum())
