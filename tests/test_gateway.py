"""Tests for the async streaming gateway (repro.gateway).

Five layers:

1. wire protocol — frame/data/chunk roundtrips, preamble and size
   validation;
2. the byte-identity invariant — every HIST/PAD x RID/VRID mode,
   streamed in uneven chunks through a real TCP connection against
   both a single :class:`PartitionService` and a 3-shard
   :class:`ShardRouter`, must stitch to exactly the offline
   ``partition()`` output (a hypothesis sweep pins the property);
3. flow control — forced admission backpressure (tiny queue) stalls
   the stream but preserves identity; a slow consumer is bounded by
   its credit window and never stalls other connections;
4. failure paths — PAD overflow as a structured ERROR frame,
   mid-stream connection kills leaving survivors intact;
5. drain — GOAWAY end-of-stream frames, refused late connections,
   ``PartitionService.drain`` refusing new submits.

No pytest-asyncio here: each test drives its own ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardRouter
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import PartitionOverflowError
from repro.gateway import (
    GatewayClient,
    GatewayDraining,
    GatewayProtocolError,
    GatewayServer,
    GatewayStreamError,
    iter_chunks,
    outputs_identical,
    stream_partition,
)
from repro.gateway import protocol
from repro.gateway.protocol import ErrorCode, FrameType
from repro.service import PartitionService, ServiceDrainingError
from repro.workloads.relations import make_relation

MODES = [
    (OutputMode.HIST, LayoutMode.RID),
    (OutputMode.HIST, LayoutMode.VRID),
    (OutputMode.PAD, LayoutMode.RID),
    (OutputMode.PAD, LayoutMode.VRID),
]


def _config(output_mode, layout_mode, partitions=32) -> PartitionerConfig:
    return PartitionerConfig(
        num_partitions=partitions,
        output_mode=output_mode,
        layout_mode=layout_mode,
    )


def _offline(config, keys, payloads=None, on_overflow="hist"):
    partitioner = FpgaPartitioner(config)
    try:
        return partitioner.partition(keys, payloads, on_overflow=on_overflow)
    finally:
        partitioner.close()


async def _with_service_server(body, service_kw=None, **server_kw):
    """Run ``body(server)`` against a fresh service-backed gateway."""
    service = PartitionService(**(service_kw or {}))
    service.start()
    server = GatewayServer(
        service=service, drain_backend=True, **server_kw
    )
    await server.start()
    try:
        return await body(server)
    finally:
        await server.drain()


async def _with_router_server(body, shards=3, **server_kw):
    router = ShardRouter(shards, seed=1)
    router.start()
    server = GatewayServer(router=router, drain_backend=True, **server_kw)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.drain()


# ---------------------------------------------------------------------------
# 1. Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def _read(self, data, coro_factory):
        async def runner():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await coro_factory(reader)

        return asyncio.run(runner())

    def test_json_frame_roundtrip(self):
        frame = protocol.encode_json(FrameType.HELLO, {"a": 1, "b": "x"})

        async def read(reader):
            return await protocol.read_frame(reader)

        frame_type, payload = self._read(frame, read)
        assert frame_type is FrameType.HELLO
        assert protocol.decode_json(payload) == {"a": 1, "b": "x"}

    def test_data_frame_roundtrip(self):
        keys = np.arange(100, dtype=np.uint32)
        pays = np.arange(100, 200, dtype=np.uint32)
        payload = protocol.encode_data(7, keys, pays)[5:]
        seq, got_keys, got_pays = protocol.decode_data(payload, True)
        assert seq == 7
        assert np.array_equal(got_keys, keys)
        assert np.array_equal(got_pays, pays)
        payload = protocol.encode_data(3, keys, None)[5:]
        seq, got_keys, got_pays = protocol.decode_data(payload, False)
        assert seq == 3
        assert np.array_equal(got_keys, keys)
        assert got_pays is None

    def test_chunk_frame_roundtrip(self):
        counts = np.array([2, 0, 3], dtype=np.int64)
        keys = [
            np.array([1, 2], dtype=np.uint32),
            np.empty(0, dtype=np.uint32),
            np.array([3, 4, 5], dtype=np.uint32),
        ]
        pays = [k + 10 for k in keys]
        payload = protocol.encode_chunk(9, counts, keys, pays)[5:]
        seq, got_counts, got_keys, got_pays = protocol.decode_chunk(
            payload, 3
        )
        assert seq == 9
        assert np.array_equal(got_counts, counts)
        assert np.array_equal(got_keys, np.array([1, 2, 3, 4, 5]))
        assert np.array_equal(got_pays, np.array([11, 12, 13, 14, 15]))

    def test_bad_magic_rejected(self):
        async def read(reader):
            await protocol.read_preamble(reader)

        with pytest.raises(GatewayProtocolError):
            self._read(b"XXXX" + struct.pack("<I", 1), read)

    def test_wrong_version_rejected(self):
        async def read(reader):
            await protocol.read_preamble(reader)

        with pytest.raises(GatewayProtocolError):
            self._read(protocol.MAGIC + struct.pack("<I", 999), read)

    def test_oversized_frame_rejected(self):
        header = struct.pack("<BI", int(FrameType.DATA), 1 << 30)

        async def read(reader):
            await protocol.read_frame(reader, max_bytes=1 << 20)

        with pytest.raises(GatewayProtocolError):
            self._read(header, read)


# ---------------------------------------------------------------------------
# 2. Byte-identity
# ---------------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("output_mode,layout_mode", MODES)
    def test_all_modes_identical_service(self, output_mode, layout_mode):
        config = _config(output_mode, layout_mode)
        keys = make_relation(20_000, "zipf", seed=5).keys
        reference = _offline(config, keys)

        async def body(server):
            return await stream_partition(
                "127.0.0.1", server.port, keys, config=config,
                on_overflow="hist", chunk_tuples=3000,
            )

        output = asyncio.run(_with_service_server(body))
        assert outputs_identical(output, reference)
        assert output.produced_by == "gateway"

    @pytest.mark.parametrize("output_mode,layout_mode", MODES)
    def test_all_modes_identical_cluster(self, output_mode, layout_mode):
        config = _config(output_mode, layout_mode)
        keys = make_relation(12_000, "zipf", seed=9).keys
        reference = _offline(config, keys)

        async def body(server):
            return await stream_partition(
                "127.0.0.1", server.port, keys, config=config,
                on_overflow="hist", chunk_tuples=2500,
            )

        output = asyncio.run(_with_router_server(body))
        assert outputs_identical(output, reference)

    def test_explicit_payloads_pass_through(self):
        config = _config(OutputMode.HIST, LayoutMode.RID)
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**32, 9_001, dtype=np.uint64).astype(
            np.uint32
        )
        payloads = rng.integers(0, 2**32, 9_001, dtype=np.uint64).astype(
            np.uint32
        )
        reference = _offline(config, keys, payloads)

        async def body(server):
            return await stream_partition(
                "127.0.0.1", server.port, keys, payloads, config=config,
                chunk_tuples=777,
            )

        output = asyncio.run(_with_service_server(body))
        assert outputs_identical(output, reference)

    def test_vrid_ignores_client_payloads(self):
        # the offline call ignores payloads in VRID mode; so must the
        # gateway, even when the stream carries a payload column
        config = _config(OutputMode.HIST, LayoutMode.VRID)
        keys = make_relation(5_000, "random", seed=11).keys
        bogus = np.full(5_000, 0xDEAD, dtype=np.uint32)
        reference = _offline(config, keys)

        async def body(server):
            return await stream_partition(
                "127.0.0.1", server.port, keys, bogus, config=config,
                chunk_tuples=1024,
            )

        output = asyncio.run(_with_service_server(body))
        assert outputs_identical(output, reference)

    @settings(max_examples=8, deadline=None)
    @given(
        mode=st.sampled_from(MODES),
        n=st.integers(min_value=64, max_value=6_000),
        chunk=st.integers(min_value=17, max_value=2_048),
        seed=st.integers(min_value=0, max_value=2**16),
        distribution=st.sampled_from(["random", "zipf", "linear"]),
        with_payloads=st.booleans(),
    )
    def test_identity_property(
        self, mode, n, chunk, seed, distribution, with_payloads
    ):
        output_mode, layout_mode = mode
        config = _config(output_mode, layout_mode, partitions=16)
        keys = make_relation(n, distribution, seed=seed).keys
        payloads = (
            np.arange(1, n + 1, dtype=np.uint32) if with_payloads else None
        )
        reference = _offline(config, keys, payloads)

        async def body(server):
            return await stream_partition(
                "127.0.0.1", server.port, keys, payloads, config=config,
                on_overflow="hist", chunk_tuples=chunk,
            )

        output = asyncio.run(_with_service_server(body))
        assert outputs_identical(output, reference)


# ---------------------------------------------------------------------------
# 3. Flow control
# ---------------------------------------------------------------------------


class TestFlowControl:
    def test_admission_backpressure_stalls_then_completes(self):
        # a one-slot admission queue with several chunks in flight must
        # reject; the gateway absorbs the rejection as a stall (CREDIT
        # notice + retry), and the stream still stitches byte-identical
        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        keys = make_relation(30_000, "zipf", seed=2).keys
        reference = _offline(config, keys)

        async def body(server):
            output = await stream_partition(
                "127.0.0.1", server.port, keys, config=config,
                chunk_tuples=512,
            )
            return output, server.metrics.to_dict()["counters"]

        output, counters = asyncio.run(
            _with_service_server(
                body,
                service_kw={
                    "max_queue_requests": 1,
                    "max_batch_requests": 1,
                },
                credits=8,
            )
        )
        assert outputs_identical(output, reference)
        assert counters["backpressure_stalls"] > 0

    def test_slow_consumer_bounded_and_isolated(self):
        # a client that writes DATA but never reads CHUNKs must be
        # held to its credit window server-side, while a well-behaved
        # concurrent stream completes normally
        credits = 2
        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        good_keys = make_relation(16_000, "zipf", seed=4).keys
        reference = _offline(config, good_keys)

        async def body(server):
            from repro.storage.spill import config_to_dict

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(protocol.PREAMBLE)
            writer.write(
                protocol.encode_json(
                    FrameType.HELLO,
                    {
                        "config": config_to_dict(config),
                        "on_overflow": "hist",
                        "has_payloads": False,
                    },
                )
            )
            # 12 chunks into a window of 2, never reading a byte back
            for seq in range(12):
                writer.write(
                    protocol.encode_data(
                        seq, np.arange(1024, dtype=np.uint32), None
                    )
                )
            await writer.drain()
            # let the server chew as far as its window allows
            await asyncio.sleep(0.5)
            gauges = server.metrics.to_dict()["gauges"]
            # the concurrent polite stream is unaffected
            output = await stream_partition(
                "127.0.0.1", server.port, good_keys, config=config,
                chunk_tuples=2048,
            )
            writer.transport.abort()
            return gauges, output

        gauges, output = asyncio.run(
            _with_service_server(body, credits=credits)
        )
        assert 1 <= gauges["max_stream_window"] <= credits
        assert outputs_identical(output, reference)

    def test_client_reports_stall_notices(self):
        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        keys = make_relation(24_000, "zipf", seed=6).keys

        async def body(server):
            client = await GatewayClient.connect("127.0.0.1", server.port)
            try:
                stream = await client.open_stream(config, on_overflow="hist")
                for chunk_keys, _ in iter_chunks(keys, None, 512):
                    await stream.send(chunk_keys)
                output = await stream.finish()
                return output, list(stream.stalls)
            finally:
                await client.close()

        output, stalls = asyncio.run(
            _with_service_server(
                body,
                service_kw={
                    "max_queue_requests": 1,
                    "max_batch_requests": 1,
                },
                credits=8,
            )
        )
        assert outputs_identical(output, _offline(config, keys))
        for notice in stalls:
            assert notice["stalled"] is True
            assert notice["retry_after_s"] >= 0


# ---------------------------------------------------------------------------
# 4. Failure paths
# ---------------------------------------------------------------------------


class TestFailures:
    def test_pad_overflow_raise_maps_to_error_frame(self):
        config = PartitionerConfig(
            num_partitions=8,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.RID,
            pad_tuples=0,  # zero slack: heavy zipf partition overflows
        )
        keys = make_relation(4_096, "zipf", seed=1, zipf_factor=1.5).keys
        with pytest.raises(PartitionOverflowError):
            _offline(config, keys, on_overflow="raise")

        async def body(server):
            with pytest.raises(GatewayStreamError) as excinfo:
                await stream_partition(
                    "127.0.0.1", server.port, keys, config=config,
                    on_overflow="raise", chunk_tuples=500,
                )
            return excinfo.value

        error = asyncio.run(_with_service_server(body))
        assert error.code == ErrorCode.OVERFLOW.value

    def test_pad_overflow_hist_fallback_identical(self):
        config = PartitionerConfig(
            num_partitions=8,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.RID,
            pad_tuples=0,
        )
        keys = make_relation(4_096, "zipf", seed=1, zipf_factor=1.5).keys
        reference = _offline(config, keys, on_overflow="hist")
        assert reference.config.output_mode is OutputMode.HIST

        async def body(server):
            return await stream_partition(
                "127.0.0.1", server.port, keys, config=config,
                on_overflow="hist", chunk_tuples=500,
            )

        output = asyncio.run(_with_service_server(body))
        assert outputs_identical(output, reference)

    def test_midstream_kill_leaves_survivors_intact(self):
        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        keys = [
            make_relation(12_000, "zipf", seed=20 + i).keys
            for i in range(3)
        ]
        references = [_offline(config, k) for k in keys]

        async def one_stream(server, index):
            client = await GatewayClient.connect("127.0.0.1", server.port)
            try:
                stream = await client.open_stream(config, on_overflow="hist")
                chunks = iter_chunks(keys[index], None, 1500)
                for j, (chunk_keys, _) in enumerate(chunks):
                    if index == 1 and j == len(chunks) // 2:
                        client.abort()
                        return None
                    await stream.send(chunk_keys)
                return await stream.finish()
            finally:
                await client.close()

        async def body(server):
            outputs = await asyncio.gather(
                *(one_stream(server, i) for i in range(3))
            )
            # the server survives the kill and still serves new streams
            late = await stream_partition(
                "127.0.0.1", server.port, keys[1], config=config,
                on_overflow="hist", chunk_tuples=1500,
            )
            return outputs, late

        outputs, late = asyncio.run(_with_service_server(body))
        assert outputs[1] is None
        assert outputs_identical(outputs[0], references[0])
        assert outputs_identical(outputs[2], references[2])
        assert outputs_identical(late, references[1])

    def test_protocol_error_frame_on_garbage(self):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(protocol.PREAMBLE)
            writer.write(
                protocol.encode_json(FrameType.DATA, {"not": "hello"})
            )
            await writer.drain()
            frame_type, payload = await protocol.read_frame(reader)
            writer.close()
            return frame_type, protocol.decode_json(payload)

        frame_type, info = asyncio.run(_with_service_server(body))
        assert frame_type is FrameType.ERROR
        assert info["code"] == ErrorCode.PROTOCOL.value


# ---------------------------------------------------------------------------
# 5. Drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_midstream_flushes_and_goaways(self):
        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        keys = make_relation(20_000, "zipf", seed=8).keys

        async def body(server):
            client = await GatewayClient.connect("127.0.0.1", server.port)
            try:
                stream = await client.open_stream(config, on_overflow="hist")
                chunks = iter_chunks(keys, None, 1024)
                for chunk_keys, _ in chunks[:4]:
                    await stream.send(chunk_keys)
                drain_task = asyncio.create_task(server.drain())
                with pytest.raises(GatewayDraining) as excinfo:
                    # keep sending until the GOAWAY lands
                    for chunk_keys, _ in chunks[4:]:
                        await stream.send(chunk_keys)
                        await asyncio.sleep(0.01)
                    await stream.finish()
                await drain_task
                return excinfo.value, server.metrics.to_dict()

            finally:
                await client.close()

        error, snap = asyncio.run(_with_service_server(body))
        # every chunk accepted before the cut was flushed back
        assert error.chunks_flushed >= 0
        assert snap["counters"]["streams_drained"] == 1
        assert (
            snap["counters"]["chunks_out"]
            == snap["counters"]["chunks_in"]
        )

    def test_drained_server_refuses_new_connections(self):
        async def body(server):
            port = server.port
            await server.drain()
            with pytest.raises(OSError):
                await asyncio.wait_for(
                    asyncio.open_connection("127.0.0.1", port), 2.0
                )
            return True

        assert asyncio.run(_with_service_server(body))

    def test_drain_is_idempotent(self):
        async def body(server):
            await asyncio.gather(server.drain(), server.drain())
            await server.drain()
            return True

        assert asyncio.run(_with_service_server(body))

    def test_service_drain_refuses_new_submits(self):
        from repro.service import PartitionRequest

        service = PartitionService()
        service.start()
        keys = np.arange(1000, dtype=np.uint32)
        ticket = service.submit(PartitionRequest(relation=keys))
        service.drain()
        # the in-flight request completed
        assert ticket.result(timeout=10).output is not None
        with pytest.raises(ServiceDrainingError):
            service.submit(PartitionRequest(relation=keys))
        service.drain()  # idempotent
        service.stop()

    def test_gateway_drain_drains_owned_backend(self):
        from repro.service import PartitionRequest

        service = PartitionService()
        service.start()

        async def body():
            server = GatewayServer(service=service, drain_backend=True)
            await server.start()
            await server.drain()

        asyncio.run(body())
        with pytest.raises(ServiceDrainingError):
            service.submit(
                PartitionRequest(relation=np.arange(10, dtype=np.uint32))
            )


# ---------------------------------------------------------------------------
# 6. Observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_metrics_and_spans_exported(self):
        from repro.obs import Tracer

        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        keys = make_relation(8_192, "zipf", seed=13).keys
        tracer = Tracer()

        async def body(server):
            await stream_partition(
                "127.0.0.1", server.port, keys, config=config,
                chunk_tuples=1024,
            )
            return server.metrics

        metrics = asyncio.run(
            _with_service_server(body, tracer=tracer)
        )
        counters = metrics.to_dict()["counters"]
        assert counters["connections_opened"] == 1
        assert counters["streams_completed"] == 1
        assert counters["chunks_in"] == counters["chunks_out"] == 8
        assert counters["tuples_in"] == 8_192
        text = metrics.to_prometheus()
        assert "repro_gateway_chunks_in_total 8" in text
        assert "repro_gateway_latency_seconds_bucket" in text
        assert 'stage="stream"' in text
        names = {span.name for span in tracer.export()}
        assert {
            "gateway.connection",
            "gateway.stream",
            "gateway.chunk",
            "gateway.drain",
        } <= names

    def test_optimizer_consulted_midstream(self):
        from repro.optimize import AdaptiveOptimizer

        config = _config(OutputMode.HIST, LayoutMode.RID, partitions=16)
        keys = make_relation(16_384, "zipf", seed=17).keys

        async def body(server):
            client = await GatewayClient.connect("127.0.0.1", server.port)
            try:
                stream = await client.open_stream(config, on_overflow="hist")
                for chunk_keys, _ in iter_chunks(keys, None, 2048):
                    await stream.send(chunk_keys)
                await stream.finish()
                return stream.manifest, server.metrics.to_dict()
            finally:
                await client.close()

        manifest, snap = asyncio.run(
            _with_service_server(
                body, optimizer=AdaptiveOptimizer(seed=0)
            )
        )
        assert snap["counters"]["optimizer_plans"] == 8
        profile = manifest["profile"]
        assert profile["num_tuples"] == 16_384
        assert profile["distinct_keys"] > 0
        assert 0.0 < profile["max_key_share"] <= 1.0
        assert profile["decision"]  # a plan label was recorded
