"""Documentation quality gate: every public item carries a docstring.

The deliverable is a library other people read; this test walks the
whole package and fails on any public module, class, function or
method that lacks a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.rsplit(".", 1)[-1].startswith("_"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                if not (attr.__doc__ and attr.__doc__.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
