"""Tests for the reorder buffer and out-of-order link model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reorder_buffer import OutOfOrderLink, ReorderBuffer
from repro.errors import ConfigurationError, SimulationError


class TestRob:
    def test_in_order_fill_releases_immediately(self):
        rob = ReorderBuffer(4)
        tags = [rob.allocate() for _ in range(3)]
        for i, tag in enumerate(tags):
            rob.fill(tag, f"d{i}")
        assert [rob.release() for _ in range(3)] == ["d0", "d1", "d2"]

    def test_out_of_order_fill_releases_in_order(self):
        rob = ReorderBuffer(4)
        t0, t1, t2 = (rob.allocate() for _ in range(3))
        rob.fill(t2, "d2")
        rob.fill(t0, "d0")
        assert rob.release() == "d0"
        assert rob.release() is None      # d1 still in flight
        rob.fill(t1, "d1")
        assert rob.release() == "d1"
        assert rob.release() == "d2"

    def test_head_of_line_blocking(self):
        rob = ReorderBuffer(2)
        t0 = rob.allocate()
        t1 = rob.allocate()
        rob.fill(t1, "late-head? no")
        assert rob.release() is None
        rob.fill(t0, "head")
        assert rob.release() == "head"

    def test_capacity_throttles(self):
        rob = ReorderBuffer(2)
        assert rob.allocate() is not None
        assert rob.allocate() is not None
        assert rob.allocate() is None      # full: caller must stall
        assert rob.is_full()

    def test_tags_recycled_after_release(self):
        rob = ReorderBuffer(1)
        tag = rob.allocate()
        rob.fill(tag, 1)
        rob.release()
        assert rob.allocate() is not None

    def test_duplicate_fill_rejected(self):
        rob = ReorderBuffer(2)
        tag = rob.allocate()
        rob.fill(tag, 1)
        with pytest.raises(SimulationError):
            rob.fill(tag, 2)

    def test_unallocated_fill_rejected(self):
        rob = ReorderBuffer(2)
        with pytest.raises(SimulationError):
            rob.fill(0, 1)

    def test_stats(self):
        rob = ReorderBuffer(4)
        tags = [rob.allocate() for _ in range(3)]
        for tag in tags:
            rob.fill(tag, tag)
        while rob.release() is not None:
            pass
        assert rob.max_occupancy == 3
        assert rob.total_released == 3
        assert rob.is_empty()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReorderBuffer(0)


class TestOutOfOrderLink:
    def test_everything_completes(self):
        link = OutOfOrderLink(seed=1)
        for i in range(20):
            link.issue(i, i * 10)
        done = []
        for _ in range(100):
            done.extend(link.tick())
        assert sorted(tag for tag, _ in done) == list(range(20))
        assert link.is_idle()

    def test_responses_actually_reorder(self):
        link = OutOfOrderLink(min_latency=1, max_latency=30, seed=2)
        for i in range(40):
            link.issue(i, i)
        completion_order = []
        for _ in range(100):
            completion_order.extend(tag for tag, _ in link.tick())
        assert completion_order != sorted(completion_order)

    def test_latency_validation(self):
        with pytest.raises(ConfigurationError):
            OutOfOrderLink(min_latency=5, max_latency=4)


class TestRobRestoresStreamOrder:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_any_reordering_is_absorbed(self, seed):
        """The VRID contract: position order in == position order out,
        whatever the link does in between."""
        link = OutOfOrderLink(min_latency=1, max_latency=16, seed=seed)
        rob = ReorderBuffer(capacity=16)
        n = 50
        issued = 0
        received = []
        for _ in range(1000):
            for tag, data in link.tick():
                rob.fill(tag, data)
            while True:
                data = rob.release()
                if data is None:
                    break
                received.append(data)
            if issued < n:
                tag = rob.allocate()
                if tag is not None:
                    link.issue(tag, issued)
                    issued += 1
            if len(received) == n:
                break
        assert received == list(range(n))
