"""Tests for the pipelined hybrid-join schedule model.

The interesting (and honest) outcome: at the paper's configuration —
10 CPU threads, a short in-cache build — overlapping the CPU build
with the FPGA's partitioning of S does NOT pay: the build is too small
to hide and both agents drop to their interfered Figure 2 bandwidths.
With few threads (a long build) the overlap wins.  This rationalises
the paper's sequential schedule rather than contradicting it.
"""

import pytest

from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.errors import ConfigurationError
from repro.join.pipelined_hybrid import pipelined_hybrid_timing

PAPER_N = 128 * 10**6


class TestTenThreadRegime:
    def test_overlap_not_worthwhile_at_ten_threads(self):
        """The paper's configuration: the build is ~0.06 s against an
        interference tax of ~0.2 s — sequential is right."""
        timing = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=10)
        assert not timing.worthwhile
        assert timing.speedup < 1.0

    def test_interference_tax_exceeds_hidden_work(self):
        timing = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=10)
        assert timing.interference_cost_seconds > timing.overlap_seconds


class TestFewThreadRegime:
    def test_overlap_wins_with_a_long_build(self):
        """One or two build threads: the build is long enough to cover
        S's partitioning; hiding it beats the interference tax."""
        for threads in (1, 2):
            timing = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=threads)
            assert timing.worthwhile, threads
            assert timing.speedup > 1.04

    def test_overlap_value_fades_with_threads(self):
        """More threads shrink the hideable build, so the overlap's
        value fades (the sweet spot sits at ~2 threads, where build
        and partitioning are balanced)."""
        few = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=2)
        many = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=10)
        assert few.speedup > many.speedup
        assert not many.worthwhile


class TestModelSanity:
    def test_pipelined_never_beats_critical_path(self):
        timing = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=10)
        fpga_r = timing.sequential.partition_seconds / 2
        assert timing.pipelined_seconds > fpga_r

    def test_interference_costs_are_positive(self):
        timing = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=10)
        assert timing.interference_cost_seconds > 0
        assert timing.overlap_seconds > 0

    def test_sequential_matches_hybrid_join_anchor(self):
        timing = pipelined_hybrid_timing(
            PAPER_N,
            PAPER_N,
            config=PartitionerConfig(
                num_partitions=8192,
                output_mode=OutputMode.PAD,
                layout_mode=LayoutMode.VRID,
            ),
            threads=10,
        )
        # the sequential leg reproduces the ~406-414 Mt/s hybrid anchor
        assert timing.sequential.throughput_mtuples == pytest.approx(
            410, rel=0.05
        )

    def test_invalid_threads(self):
        with pytest.raises(ConfigurationError):
            pipelined_hybrid_timing(100, 100, threads=0)
