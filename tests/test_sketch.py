"""Streaming sketches: HLL cardinality, heavy hitters, partition plans."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import (
    HeavyHitterSketch,
    HyperLogLogSketch,
    StreamSketch,
)
from repro.errors import ConfigurationError


class TestHyperLogLog:
    @pytest.mark.parametrize("n", [100, 10_000, 200_000])
    def test_cardinality_within_error_bound(self, n):
        keys = np.arange(n, dtype=np.uint32)
        sketch = HyperLogLogSketch(precision=12)
        sketch.add(keys)
        # standard error for p=12 is ~1.6%; allow a generous 5 sigma
        assert abs(sketch.cardinality() - n) / n < 0.08

    def test_duplicates_do_not_inflate(self):
        keys = np.arange(1_000, dtype=np.uint32)
        sketch = HyperLogLogSketch()
        for _ in range(20):
            sketch.add(keys)
        assert abs(sketch.cardinality() - 1_000) / 1_000 < 0.1

    def test_small_range_linear_counting(self):
        sketch = HyperLogLogSketch(precision=12)
        sketch.add(np.arange(10, dtype=np.uint32))
        assert abs(sketch.cardinality() - 10) < 2

    def test_empty_sketch(self):
        assert HyperLogLogSketch().cardinality() == 0.0

    def test_merge_equals_union(self):
        a_keys = np.arange(0, 50_000, dtype=np.uint32)
        b_keys = np.arange(25_000, 75_000, dtype=np.uint32)
        merged = HyperLogLogSketch().add(a_keys).merge(
            HyperLogLogSketch().add(b_keys)
        )
        union = HyperLogLogSketch().add(
            np.arange(0, 75_000, dtype=np.uint32)
        )
        assert merged.cardinality() == union.cardinality()

    def test_merge_rejects_precision_mismatch(self):
        with pytest.raises(ConfigurationError):
            HyperLogLogSketch(precision=10).merge(
                HyperLogLogSketch(precision=12)
            )

    def test_precision_bounds(self):
        with pytest.raises(ConfigurationError):
            HyperLogLogSketch(precision=3)
        with pytest.raises(ConfigurationError):
            HyperLogLogSketch(precision=17)

    def test_dict_roundtrip(self):
        sketch = HyperLogLogSketch().add(
            np.arange(5_000, dtype=np.uint32)
        )
        restored = HyperLogLogSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.cardinality() == sketch.cardinality()

    @pytest.mark.parametrize("exponent", [1, 2, 3, 4, 5, 6])
    def test_error_bound_property_across_scales(self, exponent):
        """Estimate error stays within ~5 sigma of the p=12 standard
        error (1.04/sqrt(4096) ~= 1.6%) from 10^1 to 10^6 distinct
        keys — the low end exercising the linear-counting path, the
        high end the raw harmonic-mean estimator."""
        n = 10**exponent
        rng = np.random.default_rng(exponent)
        keys = rng.choice(
            np.iinfo(np.uint32).max, size=n, replace=False
        ).astype(np.uint32)
        sketch = HyperLogLogSketch(precision=12)
        for chunk in np.array_split(keys, max(1, n // 100_000)):
            sketch.add(chunk)
        assert abs(sketch.cardinality() - n) / n < 0.08

    @pytest.mark.parametrize("precision", [4, 5, 6])
    def test_small_precision_bias_constants(self, precision):
        """m = 16/32/64 use Flajolet's tabulated alpha, not the
        asymptotic formula — without them the estimate runs several
        percent hot at exactly the precisions the optimizer's cheap
        per-shard sketches use."""
        m = 1 << precision
        n = 50 * m  # far above the small-range correction threshold
        keys = np.random.default_rng(precision).choice(
            np.iinfo(np.uint32).max, size=n, replace=False
        ).astype(np.uint32)
        sketch = HyperLogLogSketch(precision=precision).add(keys)
        # standard error 1.04/sqrt(m) is ~26% at m=16; stay within 3x
        assert abs(sketch.cardinality() - n) / n < 3 * 1.04 / m**0.5


class TestHeavyHitters:
    def test_dominant_key_detected(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, size=10_000, dtype=np.uint64).astype(
            np.uint32
        )
        keys[:4_000] = 42  # 40% of the input is one key
        sketch = HeavyHitterSketch(capacity=32).add(keys)
        top_key, count = sketch.top(1)[0]
        assert top_key == 42
        # Misra-Gries undercount is bounded by n / capacity
        assert count >= 4_000 - 10_000 // 32

    def test_uniform_input_has_no_large_share(self):
        keys = np.arange(100_000, dtype=np.uint32)
        sketch = StreamSketch()
        sketch.add(keys)
        assert sketch.max_key_share() < 0.01

    def test_streaming_matches_one_shot(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, size=9_000, dtype=np.uint64).astype(
            np.uint32
        )
        keys[:3_000] = 7
        one_shot = HeavyHitterSketch(capacity=128).add(keys)
        streamed = HeavyHitterSketch(capacity=128)
        for chunk in np.array_split(keys, 13):
            streamed.add(chunk)
        assert streamed.top(1)[0][0] == one_shot.top(1)[0][0] == 7

    def test_dict_roundtrip(self):
        sketch = HeavyHitterSketch(capacity=8).add(
            np.array([1, 1, 1, 2, 3], dtype=np.uint32)
        )
        restored = HeavyHitterSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.counters == sketch.counters

    def test_merge_retains_heavy_key(self):
        rng = np.random.default_rng(4)
        left = rng.integers(0, 10_000, size=8_000).astype(np.uint32)
        right = rng.integers(0, 10_000, size=8_000).astype(np.uint32)
        left[:3_000] = 42
        right[:3_000] = 42
        merged = (
            HeavyHitterSketch(capacity=32)
            .add(left)
            .merge(HeavyHitterSketch(capacity=32).add(right))
        )
        assert len(merged.counters) <= 32
        top_key, count = merged.top(1)[0]
        assert top_key == 42
        # merged under-count is bounded by the sum of both inputs'
        # n/capacity bounds
        assert count >= 6_000 - 2 * (8_000 // 32)

    def test_merge_rejects_capacity_mismatch(self):
        with pytest.raises(ConfigurationError):
            HeavyHitterSketch(capacity=8).merge(
                HeavyHitterSketch(capacity=16)
            )

    def test_stream_sketch_merge(self):
        a = StreamSketch().add(np.zeros(900, dtype=np.uint32))
        b = StreamSketch().add(np.arange(100, dtype=np.uint32))
        a.merge(b)
        assert a.num_tuples == 1_000
        assert a.max_key_share() > 0.8
        with pytest.raises(ConfigurationError):
            a.merge(StreamSketch(precision=10))
        with pytest.raises(ConfigurationError):
            StreamSketch(heavy_hitter_capacity=4).merge(StreamSketch())


class TestPartitionPlan:
    def test_uniform_plan_is_fair_share(self):
        sketch = StreamSketch().add(np.arange(64_000, dtype=np.uint32))
        plan = sketch.partition_plan(64)
        assert plan.num_tuples == 64_000
        assert plan.expected_tuples_per_partition == 1_000
        assert not plan.skewed
        assert abs(plan.distinct_keys - 64_000) / 64_000 < 0.08

    def test_heavy_key_inflates_presize_and_flags_skew(self):
        keys = np.zeros(10_000, dtype=np.uint32)
        keys[:2_000] = np.arange(2_000, dtype=np.uint32) + 1
        plan = StreamSketch().add(keys).partition_plan(16)
        # key 0 holds 80% -> expected partition >= its count
        assert plan.expected_tuples_per_partition >= 7_000
        assert plan.max_key_share > 0.7
        assert plan.skewed

    def test_skew_factor_threshold(self):
        keys = np.arange(1_000, dtype=np.uint32)
        keys[:150] = 0  # 15.1% share, fair share at P=4 is 25%
        sketch = StreamSketch().add(keys)
        assert not sketch.partition_plan(4, skew_factor=2.0).skewed
        assert sketch.partition_plan(64, skew_factor=2.0).skewed

    def test_empty_stream(self):
        plan = StreamSketch().partition_plan(8)
        assert plan.num_tuples == 0
        assert plan.expected_tuples_per_partition == 0
        assert not plan.skewed

    def test_invalid_fanout(self):
        with pytest.raises(ConfigurationError):
            StreamSketch().partition_plan(0)

    def test_stream_sketch_dict_roundtrip(self):
        sketch = StreamSketch().add(
            np.array([5, 5, 5, 9], dtype=np.uint32)
        )
        restored = StreamSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.num_tuples == 4
        assert restored.max_key_share() == sketch.max_key_share()

    def test_from_dict_none_passthrough(self):
        assert StreamSketch.from_dict(None) is None
