"""Streaming sketches: HLL cardinality, heavy hitters, partition plans."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import (
    HeavyHitterSketch,
    HyperLogLogSketch,
    StreamSketch,
)
from repro.errors import ConfigurationError


class TestHyperLogLog:
    @pytest.mark.parametrize("n", [100, 10_000, 200_000])
    def test_cardinality_within_error_bound(self, n):
        keys = np.arange(n, dtype=np.uint32)
        sketch = HyperLogLogSketch(precision=12)
        sketch.add(keys)
        # standard error for p=12 is ~1.6%; allow a generous 5 sigma
        assert abs(sketch.cardinality() - n) / n < 0.08

    def test_duplicates_do_not_inflate(self):
        keys = np.arange(1_000, dtype=np.uint32)
        sketch = HyperLogLogSketch()
        for _ in range(20):
            sketch.add(keys)
        assert abs(sketch.cardinality() - 1_000) / 1_000 < 0.1

    def test_small_range_linear_counting(self):
        sketch = HyperLogLogSketch(precision=12)
        sketch.add(np.arange(10, dtype=np.uint32))
        assert abs(sketch.cardinality() - 10) < 2

    def test_empty_sketch(self):
        assert HyperLogLogSketch().cardinality() == 0.0

    def test_merge_equals_union(self):
        a_keys = np.arange(0, 50_000, dtype=np.uint32)
        b_keys = np.arange(25_000, 75_000, dtype=np.uint32)
        merged = HyperLogLogSketch().add(a_keys).merge(
            HyperLogLogSketch().add(b_keys)
        )
        union = HyperLogLogSketch().add(
            np.arange(0, 75_000, dtype=np.uint32)
        )
        assert merged.cardinality() == union.cardinality()

    def test_merge_rejects_precision_mismatch(self):
        with pytest.raises(ConfigurationError):
            HyperLogLogSketch(precision=10).merge(
                HyperLogLogSketch(precision=12)
            )

    def test_precision_bounds(self):
        with pytest.raises(ConfigurationError):
            HyperLogLogSketch(precision=3)
        with pytest.raises(ConfigurationError):
            HyperLogLogSketch(precision=17)

    def test_dict_roundtrip(self):
        sketch = HyperLogLogSketch().add(
            np.arange(5_000, dtype=np.uint32)
        )
        restored = HyperLogLogSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.cardinality() == sketch.cardinality()


class TestHeavyHitters:
    def test_dominant_key_detected(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, size=10_000, dtype=np.uint64).astype(
            np.uint32
        )
        keys[:4_000] = 42  # 40% of the input is one key
        sketch = HeavyHitterSketch(capacity=32).add(keys)
        top_key, count = sketch.top(1)[0]
        assert top_key == 42
        # Misra-Gries undercount is bounded by n / capacity
        assert count >= 4_000 - 10_000 // 32

    def test_uniform_input_has_no_large_share(self):
        keys = np.arange(100_000, dtype=np.uint32)
        sketch = StreamSketch()
        sketch.add(keys)
        assert sketch.max_key_share() < 0.01

    def test_streaming_matches_one_shot(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, size=9_000, dtype=np.uint64).astype(
            np.uint32
        )
        keys[:3_000] = 7
        one_shot = HeavyHitterSketch(capacity=128).add(keys)
        streamed = HeavyHitterSketch(capacity=128)
        for chunk in np.array_split(keys, 13):
            streamed.add(chunk)
        assert streamed.top(1)[0][0] == one_shot.top(1)[0][0] == 7

    def test_dict_roundtrip(self):
        sketch = HeavyHitterSketch(capacity=8).add(
            np.array([1, 1, 1, 2, 3], dtype=np.uint32)
        )
        restored = HeavyHitterSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.counters == sketch.counters


class TestPartitionPlan:
    def test_uniform_plan_is_fair_share(self):
        sketch = StreamSketch().add(np.arange(64_000, dtype=np.uint32))
        plan = sketch.partition_plan(64)
        assert plan.num_tuples == 64_000
        assert plan.expected_tuples_per_partition == 1_000
        assert not plan.skewed
        assert abs(plan.distinct_keys - 64_000) / 64_000 < 0.08

    def test_heavy_key_inflates_presize_and_flags_skew(self):
        keys = np.zeros(10_000, dtype=np.uint32)
        keys[:2_000] = np.arange(2_000, dtype=np.uint32) + 1
        plan = StreamSketch().add(keys).partition_plan(16)
        # key 0 holds 80% -> expected partition >= its count
        assert plan.expected_tuples_per_partition >= 7_000
        assert plan.max_key_share > 0.7
        assert plan.skewed

    def test_skew_factor_threshold(self):
        keys = np.arange(1_000, dtype=np.uint32)
        keys[:150] = 0  # 15.1% share, fair share at P=4 is 25%
        sketch = StreamSketch().add(keys)
        assert not sketch.partition_plan(4, skew_factor=2.0).skewed
        assert sketch.partition_plan(64, skew_factor=2.0).skewed

    def test_empty_stream(self):
        plan = StreamSketch().partition_plan(8)
        assert plan.num_tuples == 0
        assert plan.expected_tuples_per_partition == 0
        assert not plan.skewed

    def test_invalid_fanout(self):
        with pytest.raises(ConfigurationError):
            StreamSketch().partition_plan(0)

    def test_stream_sketch_dict_roundtrip(self):
        sketch = StreamSketch().add(
            np.array([5, 5, 5, 9], dtype=np.uint32)
        )
        restored = StreamSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.num_tuples == 4
        assert restored.max_key_share() == sketch.max_key_share()

    def test_from_dict_none_passthrough(self):
        assert StreamSketch.from_dict(None) is None
