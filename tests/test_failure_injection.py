"""Failure-injection tests: the simulator must fail loudly, not wrongly.

A simulator that silently produces plausible-but-wrong results is worse
than no simulator; these tests corrupt internal state, misconfigure the
datapath and break invariants on purpose, and assert that each fault is
either detected (raises) or visibly corrupts the output — never
silently absorbed.
"""

import numpy as np
import pytest

from repro.constants import PAGE_BYTES
from repro.core.bram import Bram
from repro.core.circuit import PartitionerCircuit
from repro.core.fifo import Fifo
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.write_back import WriteBackModule
from repro.core.tuples import CacheLine
from repro.errors import (
    AddressTranslationError,
    ConfigurationError,
    FifoOverflowError,
    MemoryError_,
    SimulationError,
)
from repro.platform.machine import XeonFpgaPlatform


def run_circuit(keys, config, circuit=None):
    circuit = circuit or PartitionerCircuit(config)
    return circuit.run(keys, np.arange(keys.shape[0], dtype=np.uint32))


class TestCorruptedState:
    def test_corrupted_fill_rate_loses_tuples(self):
        """Resetting a combiner's fill rate mid-run overwrites the
        slots that held real tuples — the loss must be visible in the
        output, not silently papered over."""
        from repro.core.hash_module import HashedTuple
        from repro.core.write_combiner import WriteCombiner

        inp, out = Fifo(64), Fifo(64)
        wc = WriteCombiner(16, 8, inp, out)
        for i in range(5):  # slots 0..4 of partition 3 fill up
            inp.push(HashedTuple(key=i, payload=i, partition=3))
        for _ in range(16):
            wc.tick()
        wc._fill_rate.poke(3, 0)  # inject the fault
        for i in range(5, 13):  # 8 more tuples overwrite slots 0..4
            inp.push(HashedTuple(key=i, payload=i, partition=3))
        for _ in range(32):
            wc.tick()
        while wc.flush_cycle():
            pass
        emitted = 0
        while not out.is_empty():
            emitted += out.pop().num_valid
        assert emitted < 13  # tuples were demonstrably lost

    def test_misloaded_base_addresses_detected(self):
        """Overlapping partition regions violate the write-back
        containment invariant and must raise, not interleave data."""
        out_fifo = Fifo(8)
        lanes = [Fifo(8)]
        wb = WriteBackModule(4, lanes, out_fifo)
        # partitions 0 and 1 share a base: second line of either lands
        # in foreign territory at collection time; here we check the
        # module-level symptom — duplicate destination addresses.
        wb.load_base_addresses(np.array([0, 0, 10, 20]))
        line_a = CacheLine(
            keys=np.zeros(8, dtype=np.uint32),
            payloads=np.zeros(8, dtype=np.uint32),
            partition=0,
        )
        line_b = CacheLine(
            keys=np.ones(8, dtype=np.uint32),
            payloads=np.ones(8, dtype=np.uint32),
            partition=1,
        )
        lanes[0].push(line_a)
        lanes[0].push(line_b)
        for _ in range(10):
            wb.tick()
        addresses = []
        while not out_fifo.is_empty():
            addresses.append(out_fifo.pop().address)
        assert len(set(addresses)) < len(addresses)  # collision visible


class TestBrokenFlowControl:
    def test_fifo_overflow_is_loud(self):
        fifo = Fifo(2)
        fifo.push(1)
        fifo.push(2)
        with pytest.raises(FifoOverflowError):
            fifo.push(3)

    def test_too_shallow_fifos_rejected_up_front(self):
        config = PartitionerConfig(num_partitions=16)
        with pytest.raises(ConfigurationError, match="read latency"):
            PartitionerCircuit(config, fifo_depth=4)

    def test_bram_port_contention_is_loud(self):
        bram = Bram(depth=4, latency=1)
        bram.tick()
        bram.write(0, 1)
        with pytest.raises(SimulationError):
            bram.write(1, 2)


class TestPlatformFaults:
    def test_cleared_page_table_detected(self):
        platform = XeonFpgaPlatform(memory_bytes=8 * PAGE_BYTES)
        region = platform.allocate_shared("r", PAGE_BYTES)
        platform.page_table.clear()
        with pytest.raises(AddressTranslationError):
            platform.page_table.translate(region.virtual_base)

    def test_unmapped_access_detected(self):
        platform = XeonFpgaPlatform(memory_bytes=8 * PAGE_BYTES)
        platform.allocate_shared("r", PAGE_BYTES)
        with pytest.raises(AddressTranslationError):
            platform.page_table.translate(3 * PAGE_BYTES)

    def test_unaligned_qpi_access_detected(self):
        platform = XeonFpgaPlatform(memory_bytes=8 * PAGE_BYTES)
        with pytest.raises(MemoryError_):
            platform.qpi.read_line(33)

    def test_double_allocation_detected(self):
        platform = XeonFpgaPlatform(memory_bytes=8 * PAGE_BYTES)
        platform.allocate_shared("r", PAGE_BYTES)
        with pytest.raises(MemoryError_):
            platform.allocate_shared("r", PAGE_BYTES)


class TestLivelockGuard:
    def test_stuck_pipeline_raises_not_spins(self, rng):
        keys = rng.integers(0, 2**32, 256, dtype=np.uint64).astype(np.uint32)
        config = PartitionerConfig(num_partitions=16, output_mode=OutputMode.PAD,
                                   pad_tuples=512)
        with pytest.raises(SimulationError, match="livelock"):
            PartitionerCircuit(config).run(
                keys, np.arange(256, dtype=np.uint32), max_cycles=5
            )
