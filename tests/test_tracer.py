"""Tests for the cycle tracer."""

import numpy as np
import pytest

from repro.core.circuit import PartitionerCircuit
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.tracer import CircuitTracer, SignalTrace
from repro.errors import ConfigurationError


def traced_run(keys, qpi=None):
    config = PartitionerConfig(
        num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=2048
    )
    circuit = PartitionerCircuit(config, qpi_bandwidth_gbs=qpi)
    tracer = CircuitTracer()
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    circuit.run(keys, payloads, on_cycle=tracer)
    return tracer


class TestSampling:
    def test_samples_every_cycle(self, rng):
        keys = rng.integers(0, 2**32, 512, dtype=np.uint64).astype(np.uint32)
        tracer = traced_run(keys)
        assert tracer.cycles_seen > 0
        for trace in tracer.signals.values():
            assert len(trace.samples) == tracer.cycles_seen

    def test_signals_cover_all_fifos(self, rng):
        keys = rng.integers(0, 2**32, 256, dtype=np.uint64).astype(np.uint32)
        tracer = traced_run(keys)
        names = set(tracer.signals)
        assert "last-stage" in names
        assert "lane0.in" in names and "lane7.out" in names

    def test_backpressure_piles_up_at_the_write_side(self, rng):
        """Section 4.3: 'the QPI bandwidth cannot handle this and puts
        back-pressure on the write back module.'  Under a slow link the
        last-stage FIFO saturates; the first-stage FIFOs stay near
        empty because the issue logic throttles reads *before* they
        could fill — which is exactly how the overflow-free guarantee
        works, and what the tracer makes visible."""
        keys = rng.integers(0, 2**32, 1024, dtype=np.uint64).astype(
            np.uint32
        )
        slow = traced_run(keys, qpi=3.0)
        last = slow.signals["last-stage"]
        assert last.peak == last.full_scale  # saturated write side
        lane_peak = max(
            slow.signals[f"lane{i}.in"].peak for i in range(8)
        )
        assert lane_peak <= 2  # inputs throttled, never backed up

    def test_sampling_cap(self, rng):
        keys = rng.integers(0, 2**32, 512, dtype=np.uint64).astype(np.uint32)
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=2048
        )
        tracer = CircuitTracer(max_cycles=10)
        PartitionerCircuit(config).run(
            keys, np.arange(512, dtype=np.uint32), on_cycle=tracer
        )
        assert tracer.cycles_seen == 10


class TestRendering:
    def test_render_shape(self, rng):
        keys = rng.integers(0, 2**32, 256, dtype=np.uint64).astype(np.uint32)
        tracer = traced_run(keys)
        text = tracer.render(width=40, signals=["lane0.in", "last-stage"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("lane0.in")
        assert "peak" in lines[1]

    def test_density_row_levels(self):
        trace = SignalTrace("s", samples=[0, 0, 5, 10], full_scale=10)
        row = trace.density_row(width=4)
        assert row[0] == "." and row[-1] == "9"

    def test_density_row_zero_full_scale(self):
        # a degenerate full_scale must not saturate every sample to 9:
        # normalisation falls back to the observed peak
        trace = SignalTrace("s", samples=[0, 1, 5, 10], full_scale=0)
        row = trace.density_row(width=4)
        assert row == ".149"  # round-half-even: 9*5/10 -> 4

    def test_density_row_zero_full_scale_all_zero_samples(self):
        trace = SignalTrace("s", samples=[0, 0, 0], full_scale=0)
        assert trace.density_row(width=3) == "..."

    def test_density_row_more_columns_than_samples(self):
        # short traces stretch to the requested width so multi-signal
        # renders stay column-aligned
        trace = SignalTrace("s", samples=[0, 10], full_scale=10)
        row = trace.density_row(width=8)
        assert len(row) == 8
        assert row == "....9999"

    def test_density_row_width_edge_cases(self):
        trace = SignalTrace("s", samples=[3, 6], full_scale=10)
        assert trace.density_row(width=0) == ""
        assert SignalTrace("s", samples=[], full_scale=10).density_row(8) == ""

    def test_render_before_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitTracer().render()

    def test_unknown_signal_rejected(self, rng):
        keys = rng.integers(0, 2**32, 64, dtype=np.uint64).astype(np.uint32)
        tracer = traced_run(keys)
        with pytest.raises(ConfigurationError):
            tracer.render(signals=["nope"])
