"""Tests for the FPGA-side pipelined page table (Section 2.1)."""

import pytest

from repro.constants import PAGE_BYTES, PAGE_TABLE_TRANSLATION_CYCLES
from repro.errors import AddressTranslationError, ConfigurationError
from repro.platform.pagetable import PageTable


@pytest.fixture
def table():
    pt = PageTable(max_pages=8)
    pt.populate([3 * PAGE_BYTES, 7 * PAGE_BYTES, 1 * PAGE_BYTES])
    return pt


class TestFunctionalTranslation:
    def test_translate(self, table):
        assert table.translate(0) == 3 * PAGE_BYTES
        assert table.translate(PAGE_BYTES + 5) == 7 * PAGE_BYTES + 5
        assert table.translate(2 * PAGE_BYTES) == PAGE_BYTES

    def test_unpopulated_page(self, table):
        with pytest.raises(AddressTranslationError):
            table.translate(3 * PAGE_BYTES)

    def test_beyond_capacity(self, table):
        with pytest.raises(AddressTranslationError):
            table.translate(8 * PAGE_BYTES)

    def test_negative(self, table):
        with pytest.raises(AddressTranslationError):
            table.translate(-1)

    def test_mapped_bytes(self, table):
        assert table.mapped_bytes == 3 * PAGE_BYTES


class TestPopulation:
    def test_appending_regions(self):
        pt = PageTable(max_pages=4)
        pt.populate([0])
        pt.populate([PAGE_BYTES])
        assert pt.num_entries == 2
        assert pt.translate(PAGE_BYTES) == PAGE_BYTES

    def test_overflow(self):
        pt = PageTable(max_pages=1)
        with pytest.raises(AddressTranslationError):
            pt.populate([0, PAGE_BYTES])

    def test_unaligned_physical_rejected(self):
        pt = PageTable(max_pages=2)
        with pytest.raises(AddressTranslationError):
            pt.populate([123])

    def test_clear(self, table):
        table.clear()
        assert table.num_entries == 0
        with pytest.raises(AddressTranslationError):
            table.translate(0)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            PageTable(max_pages=0)


class TestPipelinedTranslation:
    def test_two_cycle_latency(self, table):
        offset = table.issue(PAGE_BYTES + 42)
        assert offset == 42
        table.tick()
        assert table.result(offset) is None
        table.tick()
        assert table.result(offset) == 7 * PAGE_BYTES + 42

    def test_one_translation_per_cycle(self, table):
        """The paper: translation takes 2 cycles but is pipelined —
        throughput is one address per cycle."""
        addresses = [0, PAGE_BYTES, 2 * PAGE_BYTES, 5]
        expected = [3 * PAGE_BYTES, 7 * PAGE_BYTES, PAGE_BYTES, 3 * PAGE_BYTES + 5]
        offsets = []
        results = []
        for cycle in range(len(addresses) + PAGE_TABLE_TRANSLATION_CYCLES):
            table.tick()
            done = cycle - PAGE_TABLE_TRANSLATION_CYCLES
            if 0 <= done < len(offsets):
                results.append(table.result(offsets[done]))
            if cycle < len(addresses):
                offsets.append(table.issue(addresses[cycle]))
        # last results
        while len(results) < len(addresses):
            table.tick()
            results.append(table.result(offsets[len(results)]))
        assert results == expected

    def test_pipelined_unpopulated_raises_on_result(self):
        pt = PageTable(max_pages=4)
        pt.populate([0])
        offset = pt.issue(2 * PAGE_BYTES)  # within capacity, unmapped
        pt.tick()
        pt.tick()
        with pytest.raises(AddressTranslationError):
            pt.result(offset)
