"""Tests for the command-line interface."""

import pytest

from repro.cli import _EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig9", "tab1", "sec48"):
            assert key in out


class TestValidate:
    def test_prints_table(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "HIST/RID" in out and "PAD/VRID" in out
        assert "294" in out


class TestPartition:
    def test_fpga_engine(self, capsys):
        assert main(
            ["partition", "--tuples", "5000", "--partitions", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "5,000 tuples" in out
        assert "Mtuples/s" in out

    def test_cpu_backend(self, capsys):
        assert main(
            [
                "partition", "--tuples", "5000", "--partitions", "64",
                "--backend", "cpu", "--radix",
            ]
        ) == 0
        assert "cpu" in capsys.readouterr().out

    def test_parallel_engine_flag(self, capsys):
        assert main(
            [
                "partition", "--tuples", "5000", "--partitions", "64",
                "--engine", "parallel", "--threads", "2",
            ]
        ) == 0
        assert "5,000 tuples" in capsys.readouterr().out

    def test_serial_engine_cpu_backend(self, capsys):
        assert main(
            [
                "partition", "--tuples", "5000", "--partitions", "64",
                "--backend", "cpu", "--engine", "serial", "--radix",
            ]
        ) == 0
        assert "cpu" in capsys.readouterr().out

    def test_vrid_mode(self, capsys):
        assert main(
            [
                "partition", "--tuples", "5000", "--partitions", "64",
                "--mode", "HIST/VRID",
            ]
        ) == 0
        assert "HIST/VRID" in capsys.readouterr().out

    def test_bad_mode(self):
        with pytest.raises(SystemExit):
            main(["partition", "--mode", "FAST/FURIOUS"])


class TestJoin:
    def test_join_table(self, capsys):
        assert main(
            ["join", "--workload", "A", "--scale", "200000",
             "--threads", "4", "--partitions", "256"]
        ) == 0
        out = capsys.readouterr().out
        assert "cpu" in out and "matches" in out

    def test_join_with_parallel_engine(self, capsys):
        assert main(
            ["join", "--workload", "A", "--scale", "200000",
             "--threads", "2", "--partitions", "64",
             "--engine", "parallel"]
        ) == 0
        out = capsys.readouterr().out
        assert "cpu" in out and "matches" in out

    def test_skewed_join_falls_back(self, capsys):
        assert main(
            ["join", "--workload", "A", "--scale", "200000",
             "--threads", "4", "--partitions", "256", "--zipf", "1.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "HIST" in out  # the skewed side retried in HIST mode


class TestServe:
    def test_batched_serving(self, capsys):
        assert main(
            ["serve", "--requests", "40", "--partitions", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "served 40 requests" in out
        assert "ok 40" in out
        assert "batched dispatch" in out

    def test_naive_dispatch_flag(self, capsys):
        assert main(
            ["serve", "--requests", "12", "--partitions", "32", "--naive"]
        ) == 0
        assert "naive dispatch" in capsys.readouterr().out

    def test_backpressure_prints_retry_hints(self, capsys):
        assert main(
            ["serve", "--requests", "64", "--partitions", "32",
             "--queue", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "retry-after hints" in out

    def test_metrics_json_output(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(
            ["serve", "--requests", "10", "--partitions", "32",
             "--output", str(target)]
        ) == 0
        import json

        data = json.loads(target.read_text())
        assert data["counters"]["completed"] == 10
        assert "latency" in data

    def test_degradation_counters_surface(self, capsys):
        assert main(
            ["serve", "--requests", "20", "--partitions", "32",
             "--fail-rate", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "degraded to cpu   : 20" in out

    def test_bad_size_range(self):
        with pytest.raises(SystemExit):
            main(["serve", "--min-tuples", "100", "--max-tuples", "10"])


class TestSimulate:
    def test_unthrottled(self, capsys):
        assert main(
            ["simulate", "--tuples", "512", "--partitions", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "lines/cycle" in out

    def test_throttled(self, capsys):
        assert main(
            ["simulate", "--tuples", "512", "--partitions", "16",
             "--bandwidth", "6.5"]
        ) == 0
        assert "back-pressure" in capsys.readouterr().out

    def test_fast_forward_matches_reference(self, capsys):
        assert main(
            ["simulate", "--tuples", "512", "--partitions", "16"]
        ) == 0
        reference = capsys.readouterr().out
        assert main(
            ["simulate", "--tuples", "512", "--partitions", "16",
             "--fast-forward"]
        ) == 0
        assert capsys.readouterr().out == reference


class TestCluster:
    def test_serve_with_kill_and_identity(self, capsys):
        assert main(
            ["cluster", "serve", "--shards", "3", "--requests", "4",
             "--tuples", "4000", "--partitions", "16",
             "--distribution", "zipf", "--kill-shard", "1",
             "--check-identity"]
        ) == 0
        out = capsys.readouterr().out
        assert "killed shard-1" in out
        assert "4/4 requests verified" in out
        assert "0 failed" in out

    def test_serve_prometheus_output(self, tmp_path, capsys):
        page = tmp_path / "cluster.prom"
        assert main(
            ["cluster", "serve", "--shards", "2", "--requests", "2",
             "--tuples", "2000", "--partitions", "16",
             "--prometheus-out", str(page)]
        ) == 0
        text = page.read_text()
        assert 'shard="shard-0"' in text
        assert "repro_cluster_requests_total" in text

    def test_bench_table(self, capsys):
        assert main(
            ["cluster", "bench", "--shards-sweep", "1", "2",
             "--requests", "1", "--tuples", "4000",
             "--partitions", "16", "--distribution", "zipf"]
        ) == 0
        out = capsys.readouterr().out
        assert "cluster-bench" in out
        assert "max/mean load" in out


class TestReport:
    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", "--output", str(out)]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "[Figure 9]" in text
        assert "[Section 4.8]" in text


class TestExperiment:
    def test_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_loads_a_light_bench(self, capsys):
        assert main(["experiment", "tab2"]) == 0
        out = capsys.readouterr().out
        assert "[Table 2]" in out

    def test_chart_option(self, capsys):
        assert main(["experiment", "tab2", "--chart", "bram"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "[Table 2] bram" in out

    def test_every_registered_experiment_has_a_module(self):
        from repro.cli import _benchmarks_dir

        directory = _benchmarks_dir()
        assert directory is not None
        for module_name, _builder in _EXPERIMENTS.values():
            assert (directory / f"{module_name}.py").exists(), module_name
