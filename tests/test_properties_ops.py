"""Property-based tests for the operator extensions and the
tick-level behaviour of the write combiner under arbitrary stimulus."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fifo import Fifo
from repro.core.hash_module import HashedTuple
from repro.core.modes import PartitionerConfig
from repro.core.write_combiner import WriteCombiner
from repro.core.tuples import DUMMY_PAYLOAD
from repro.ops import RangePartitioner, partitioned_groupby
from repro.ops.distributed import DistributedPartitioner
from repro.core.partitioner import FpgaPartitioner
from repro.workloads.relations import Relation

small_key_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=200
).map(lambda xs: np.array(xs, dtype=np.uint32))


@given(
    keys=small_key_arrays,
    values=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=1, max_size=200
    ),
    aggregate=st.sampled_from(["sum", "count", "min", "max"]),
)
@settings(max_examples=50, deadline=None)
def test_groupby_matches_dict_reference(keys, values, aggregate):
    n = min(keys.shape[0], len(values))
    keys = keys[:n]
    values = np.array(values[:n], dtype=np.uint32)
    result = partitioned_groupby(
        keys, values, aggregate=aggregate, num_partitions=8
    )
    reference = {}
    for k, v in zip(map(int, keys), map(int, values)):
        reference.setdefault(k, []).append(v)
    reducer = {"sum": sum, "count": len, "min": min, "max": max}[aggregate]
    assert result.num_groups == len(reference)
    for k, v in result.as_dict().items():
        assert v == reducer(reference[k])


@given(keys=small_key_arrays)
@settings(max_examples=50, deadline=None)
def test_range_partitioning_is_an_ordered_permutation(keys):
    out = RangePartitioner(num_partitions=8, seed=1).partition(keys)
    collected = np.concatenate(out.partition_keys)
    assert sorted(map(int, collected)) == sorted(map(int, keys))
    previous_max = -1
    for p_keys in out.partition_keys:
        if p_keys.size == 0:
            continue
        assert int(p_keys.min()) >= previous_max
        previous_max = int(p_keys.max())


@given(keys=small_key_arrays, nodes=st.sampled_from([1, 2, 4]))
@settings(max_examples=25, deadline=None)
def test_distributed_equals_single_node(keys, nodes):
    config = PartitionerConfig(num_partitions=16)
    relation = Relation(
        keys=keys, payloads=np.arange(keys.shape[0], dtype=np.uint32)
    )
    cluster = DistributedPartitioner(nodes, config)
    result = cluster.execute(cluster.split_relation(relation))
    single = FpgaPartitioner(config).partition(relation)
    for p in range(16):
        owner = cluster.owner_of(p)
        got = result.node_partition_keys[owner].get(
            p, np.empty(0, dtype=np.uint32)
        )
        assert sorted(map(int, got)) == sorted(
            map(int, single.partition_keys[p])
        )


# ---------------------------------------------------------------------------
# Tick-level fuzz: the write combiner must never lose or invent a tuple
# for ANY interleaving of tuples and idle cycles.
# ---------------------------------------------------------------------------

stimulus = st.lists(
    st.one_of(
        st.none(),  # an idle cycle (empty input FIFO)
        st.integers(min_value=0, max_value=7),  # a tuple for partition p
    ),
    min_size=1,
    max_size=150,
)


@given(events=stimulus)
@settings(max_examples=80, deadline=None)
def test_write_combiner_conserves_tuples_under_any_stimulus(events):
    inp = Fifo(256, name="in")
    out = Fifo(256, name="out")
    wc = WriteCombiner(
        num_partitions=8, tuples_per_line=8, input_fifo=inp, output_fifo=out
    )
    sent = []
    serial = 0
    for event in events:
        if event is not None:
            inp.push(HashedTuple(key=event, payload=serial, partition=event))
            sent.append((event, serial))
            serial += 1
        wc.tick()
    for _ in range(16):  # drain the pipeline
        wc.tick()
    while wc.flush_cycle():
        pass
    received = []
    while not out.is_empty():
        line = out.pop()
        for k, p in zip(line.keys, line.payloads):
            if int(p) != DUMMY_PAYLOAD:
                received.append((int(k), int(p)))
                assert line.partition == int(k)
    assert sorted(received) == sorted(sent)
