"""Tests for the pipelined hash-function module (Section 4.1)."""

import numpy as np

from repro.constants import CYCLES_HASHING
from repro.core.hash_module import HashModule
from repro.core.hashing import murmur3_finalizer, partition_of


class TestLatency:
    def test_exactly_five_cycles(self):
        module = HashModule(partition_bits=8)
        out = module.tick((42, 0))
        assert out is None
        for _ in range(CYCLES_HASHING - 1):
            assert module.tick() is None
        result = module.tick()
        assert result is not None
        assert result.key == 42

    def test_empty_then_refill(self):
        module = HashModule(partition_bits=4)
        module.tick((1, 1))
        for _ in range(CYCLES_HASHING):
            module.tick()
        assert module.is_empty()
        module.tick((2, 2))
        assert not module.is_empty()


class TestThroughput:
    def test_one_tuple_per_cycle(self):
        """Code 3's point: the 5-stage pipeline accepts a new input
        every cycle and emits one output every cycle once full."""
        module = HashModule(partition_bits=8)
        outputs = []
        n = 50
        for i in range(n + CYCLES_HASHING):
            incoming = (i, i) if i < n else None
            out = module.tick(incoming)
            if out is not None:
                outputs.append(out)
        assert len(outputs) == n
        assert [o.key for o in outputs] == list(range(n))

    def test_bubbles_pass_through(self):
        module = HashModule(partition_bits=8)
        pattern = [(1, 1), None, (2, 2), None, None, (3, 3)]
        outputs = []
        for incoming in pattern + [None] * CYCLES_HASHING:
            out = module.tick(incoming)
            if out is not None:
                outputs.append(out.key)
        assert outputs == [1, 2, 3]


class TestBitExactness:
    def test_matches_functional_murmur(self):
        module = HashModule(partition_bits=13, use_hash=True)
        keys = [0, 1, 0xDEADBEEF, 2**32 - 1, 12345]
        outputs = {}
        for i, key in enumerate(keys):
            module.tick((key, i))
        for _ in range(CYCLES_HASHING):
            out = module.tick()
            if out is not None:
                outputs[out.key] = out.partition
        # drain remaining
        while not module.is_empty():
            out = module.tick()
            if out is not None:
                outputs[out.key] = out.partition
        for key in keys:
            expected = int(murmur3_finalizer(key)) & (2**13 - 1)
            assert outputs[key] == expected

    def test_radix_mode(self):
        module = HashModule(partition_bits=4, use_hash=False)
        module.tick((0b10110101, 0))
        result = None
        while result is None:
            result = module.tick()
        assert result.partition == 0b0101

    def test_matches_partition_of_vectorised(self, rng):
        keys = rng.integers(0, 2**32, size=64, dtype=np.uint64).astype(
            np.uint32
        )
        expected = np.asarray(partition_of(keys, 256, use_hash=True))
        module = HashModule(partition_bits=8, use_hash=True)
        got = {}
        for i, key in enumerate(keys):
            out = module.tick((int(key), i))
            if out is not None:
                got[out.payload] = out.partition
        while not module.is_empty():
            out = module.tick()
            if out is not None:
                got[out.payload] = out.partition
        for i in range(64):
            assert got[i] == int(expected[i])

    def test_payload_carried_untouched(self):
        module = HashModule(partition_bits=8)
        module.tick((99, 0xCAFE))
        result = None
        while result is None:
            result = module.tick()
        assert result.payload == 0xCAFE
