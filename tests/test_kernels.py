"""Native kernels: byte-identity with NumPy, dispatch, zero-copy plane.

The contract of :mod:`repro.kernels` is that the compiled backend is a
pure speedup — for every primitive and every partitioner mode, the
bytes that come out are exactly the bytes the NumPy fallback produces.
These tests pin that contract:

1. primitive-level property tests (hypothesis): ``hash_histogram``,
   ``hash_only``, ``stable_scatter`` and ``swwc_scatter`` agree between
   backends for arbitrary inputs, fan-outs and partition-index dtypes;
2. partitioner-level property tests: ``FpgaPartitioner`` output is
   byte-identical across backends for HIST/PAD x RID/VRID x hash kind;
3. dispatch behaviour: the env switch, forced-native failure mode, and
   the per-call dtype fallback;
4. zero-copy assertions: partition views share memory with the single
   backing column all the way through the service resolve path.

The native-vs-numpy tests skip cleanly when no C compiler is available
(the numpy backend is then the only backend, and trivially agrees with
itself).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.core.partitioner import FpgaPartitioner, PartitionSlices
from repro.exec.morsels import parts_dtype

NATIVE = kernels.native_available()
needs_native = pytest.mark.skipif(
    not NATIVE, reason="native kernels unavailable (no C compiler?)"
)

key_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=200
).map(lambda xs: np.array(xs, dtype=np.uint32))


def _both_backends(fn):
    """Run ``fn()`` under each backend, return the two results."""
    with kernels.using_backend("native"):
        native = fn()
    with kernels.using_backend("numpy"):
        fallback = fn()
    return native, fallback


# ---------------------------------------------------------------------------
# 1. Primitive-level byte identity


@needs_native
@given(
    keys=key_arrays,
    num_partitions=st.sampled_from([2, 256, 1024, 1 << 17]),
    use_hash=st.booleans(),
    lanes=st.sampled_from([None, 1, 8]),
    offset=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_hash_histogram_native_equals_numpy(
    keys, num_partitions, use_hash, lanes, offset
):
    def run():
        parts = np.empty(keys.shape[0], dtype=parts_dtype(num_partitions))
        return kernels.hash_histogram(
            keys,
            num_partitions,
            use_hash,
            lanes=lanes,
            global_offset=offset,
            parts_out=parts,
        )

    native, fallback = _both_backends(run)
    assert np.array_equal(native[0], fallback[0])  # partition indices
    assert np.array_equal(native[1], fallback[1])  # histogram
    if lanes is None:
        assert native[2] is None and fallback[2] is None
    else:
        assert np.array_equal(native[2], fallback[2])  # lane histogram
    assert int(native[1].sum()) == keys.shape[0]


@needs_native
@given(
    keys=key_arrays,
    num_partitions=st.sampled_from([2, 64, 1 << 16, 1 << 17]),
    use_hash=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_hash_only_native_equals_numpy(keys, num_partitions, use_hash):
    native, fallback = _both_backends(
        lambda: kernels.hash_only(keys, num_partitions, use_hash)
    )
    assert native.dtype == fallback.dtype
    assert np.array_equal(native, fallback)


@needs_native
@given(
    keys=key_arrays,
    num_partitions=st.sampled_from([2, 256, 1024, 1 << 17]),
    use_hash=st.booleans(),
    buffer_tuples=st.sampled_from([1, 3, 16]),
    threads=st.sampled_from([1, 2, 5]),
)
@settings(max_examples=60, deadline=None)
def test_scatters_native_equals_numpy(
    keys, num_partitions, use_hash, buffer_tuples, threads
):
    """stable_scatter and swwc_scatter: same bytes on both backends,
    and byte-identical to each other (buffering must only change the
    write schedule, never the destination slots) — including the
    multi-threaded SWWC flush, whose per-thread partition ownership
    must not perturb a single byte."""
    n = keys.shape[0]
    payloads = np.arange(n, dtype=np.uint32)
    parts = np.empty(n, dtype=parts_dtype(num_partitions))
    _, hist, _ = kernels.hash_histogram(
        keys, num_partitions, use_hash, parts_out=parts
    )
    dest_base = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(hist[:-1], out=dest_base[1:])

    def run(primitive, extra, **kwargs):
        out_keys = np.empty(n, dtype=np.uint32)
        out_payloads = np.empty(n, dtype=np.uint32)
        primitive(
            keys, payloads, parts, dest_base, num_partitions,
            *extra, out_keys, out_payloads, **kwargs,
        )
        return out_keys, out_payloads

    plain_native, plain_numpy = _both_backends(
        lambda: run(kernels.stable_scatter, ())
    )
    swwc_native, swwc_numpy = _both_backends(
        lambda: run(kernels.swwc_scatter, (buffer_tuples,))
    )
    swwc_mt_native, swwc_mt_numpy = _both_backends(
        lambda: run(kernels.swwc_scatter, (buffer_tuples,), threads=threads)
    )
    reference = plain_numpy
    for label, got in [
        ("scatter/native", plain_native),
        ("swwc/native", swwc_native),
        ("swwc/numpy", swwc_numpy),
        (f"swwc-mt{threads}/native", swwc_mt_native),
        (f"swwc-mt{threads}/numpy", swwc_mt_numpy),
    ]:
        assert np.array_equal(got[0], reference[0]), label
        assert np.array_equal(got[1], reference[1]), label
    # the scatter is a permutation: nothing lost, nothing invented
    assert np.array_equal(np.sort(reference[0]), np.sort(keys))


@needs_native
@given(
    build_keys=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=200
    ).map(lambda xs: np.array(xs, dtype=np.uint32)),
    probe_keys=st.lists(
        st.integers(min_value=0, max_value=50), min_size=0, max_size=300
    ).map(lambda xs: np.array(xs, dtype=np.uint32)),
    num_buckets=st.sampled_from([1, 2, 16, 256]),
)
@settings(max_examples=40, deadline=None)
def test_bucket_join_native_equals_numpy(build_keys, probe_keys, num_buckets):
    # Tiny key range on purpose: duplicates and bucket collisions are
    # the interesting cases for chain construction and emission order.
    (heads_n, nxt_n), (heads_f, nxt_f) = _both_backends(
        lambda: kernels.bucket_build(build_keys, num_buckets)
    )
    assert np.array_equal(heads_n, heads_f)
    assert np.array_equal(nxt_n, nxt_f)

    def probe():
        heads, nxt = kernels.bucket_build(build_keys, num_buckets)
        return kernels.bucket_probe(
            build_keys, heads, nxt, num_buckets, probe_keys
        )

    (p_n, b_n, hops_n), (p_f, b_f, hops_f) = _both_backends(probe)
    # probe-major emission order and hop count are backend-invariant
    assert np.array_equal(p_n, p_f)
    assert np.array_equal(b_n, b_f)
    assert hops_n == hops_f
    # every emitted pair really matches; the full pair set is exactly
    # the cross product of equal keys
    assert np.array_equal(build_keys[b_n], probe_keys[p_n])
    expected = sum(
        int((build_keys == key).sum()) for key in probe_keys.tolist()
    )
    assert p_n.shape[0] == expected


@needs_native
def test_swwc_mt_flush_large_input_byte_identical():
    """A bulk-sized MT flush (multiple full buffers per partition and a
    partial drain each) matches the serial flush and the plain scatter
    for every thread count, including thread counts above the fan-out."""
    rng = np.random.default_rng(21)
    n, num_partitions, buffer_tuples = 300_000, 96, 8
    keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(np.uint32)
    payloads = rng.integers(0, 2**31, size=n, dtype=np.uint64).astype(
        np.uint32
    )
    parts = np.empty(n, dtype=parts_dtype(num_partitions))
    with kernels.using_backend("native"):
        _, hist, _ = kernels.hash_histogram(
            keys, num_partitions, True, parts_out=parts
        )
        dest_base = np.zeros(num_partitions, dtype=np.int64)
        np.cumsum(hist[:-1], out=dest_base[1:])
        ref_keys = np.empty(n, dtype=np.uint32)
        ref_payloads = np.empty(n, dtype=np.uint32)
        kernels.stable_scatter(
            keys, payloads, parts, dest_base, num_partitions,
            ref_keys, ref_payloads,
        )
        for threads in (1, 2, 4, 96, 200):
            out_keys = np.empty(n, dtype=np.uint32)
            out_payloads = np.empty(n, dtype=np.uint32)
            kernels.swwc_scatter(
                keys, payloads, parts, dest_base, num_partitions,
                buffer_tuples, out_keys, out_payloads, threads=threads,
            )
            assert np.array_equal(out_keys, ref_keys), threads
            assert np.array_equal(out_payloads, ref_payloads), threads


@needs_native
def test_swwc_partition_threads_match_engine_arrangement():
    """swwc_partition with the MT native flush produces the exact bytes
    of the numpy backend at the same thread count (the per-thread chunk
    arrangement is part of the contract, so thread counts must agree)."""
    from repro.cpu.swwc_buffers import swwc_partition

    rng = np.random.default_rng(22)
    keys = rng.integers(0, 2**32, size=120_000, dtype=np.uint64).astype(
        np.uint32
    )
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    for threads in (2, 4):
        with kernels.using_backend("native"):
            nat = swwc_partition(
                keys, payloads, 64, use_hash=True, threads=threads
            )
        with kernels.using_backend("numpy"):
            ref = swwc_partition(
                keys, payloads, 64, use_hash=True, threads=threads
            )
        assert np.array_equal(nat[2], ref[2])
        for a, b in zip(nat[0], ref[0]):
            assert np.array_equal(a, b)
        for a, b in zip(nat[1], ref[1]):
            assert np.array_equal(a, b)


@needs_native
def test_scatter_does_not_mutate_dest_base():
    keys = np.arange(64, dtype=np.uint32)
    payloads = keys.copy()
    parts = (keys % 4).astype(np.uint8)
    dest_base = np.array([0, 16, 32, 48], dtype=np.int64)
    snapshot = dest_base.copy()
    out = np.empty(64, dtype=np.uint32)
    for backend in ("native", "numpy"):
        with kernels.using_backend(backend):
            kernels.stable_scatter(
                keys, payloads, parts, dest_base, 4, out, out.copy()
            )
            assert np.array_equal(dest_base, snapshot), backend


# ---------------------------------------------------------------------------
# 2. Partitioner-level byte identity across every mode


@needs_native
@given(
    keys=key_arrays.filter(lambda a: a.size >= 1),
    num_partitions=st.sampled_from([2, 16, 64]),
    output_mode=st.sampled_from(list(OutputMode)),
    layout_mode=st.sampled_from(list(LayoutMode)),
    hash_kind=st.sampled_from(list(HashKind)),
)
@settings(max_examples=40, deadline=None)
def test_partitioner_byte_identical_across_backends(
    keys, num_partitions, output_mode, layout_mode, hash_kind
):
    config = PartitionerConfig(
        num_partitions=num_partitions,
        output_mode=output_mode,
        layout_mode=layout_mode,
        hash_kind=hash_kind,
        pad_tuples=len(keys) + 64,
    )
    payloads = np.arange(keys.shape[0], dtype=np.uint32)

    def run():
        return FpgaPartitioner(config).partition(keys, payloads)

    native, fallback = _both_backends(run)
    assert np.array_equal(native.counts, fallback.counts)
    assert np.array_equal(
        native.lines_per_partition, fallback.lines_per_partition
    )
    assert np.array_equal(native.base_lines, fallback.base_lines)
    assert native.dummy_slots == fallback.dummy_slots
    for a, b in zip(native.partition_keys, fallback.partition_keys):
        assert np.array_equal(a, b)
    for a, b in zip(native.partition_payloads, fallback.partition_payloads):
        assert np.array_equal(a, b)


@needs_native
@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=300), min_size=1, max_size=6
    ),
    num_partitions=st.sampled_from([4, 64]),
)
@settings(max_examples=25, deadline=None)
def test_partition_many_byte_identical_across_backends(sizes, num_partitions):
    rng = np.random.default_rng(sum(sizes) + len(sizes))
    relations = [
        rng.integers(0, 2**32, size=s, dtype=np.uint64).astype(np.uint32)
        for s in sizes
    ]
    config = PartitionerConfig(num_partitions=num_partitions)

    def run():
        return FpgaPartitioner(config).partition_many(relations)

    native, fallback = _both_backends(run)
    assert len(native) == len(fallback) == len(relations)
    for left, right in zip(native, fallback):
        assert np.array_equal(left.counts, right.counts)
        for a, b in zip(left.partition_keys, right.partition_keys):
            assert np.array_equal(a, b)
        for a, b in zip(left.partition_payloads, right.partition_payloads):
            assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# 3. Dispatch behaviour


class TestDispatch:
    def test_backend_name_is_valid(self):
        assert kernels.backend_name() in ("native", "numpy")

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(kernels.KernelBuildError):
            kernels.set_backend("cuda")

    def test_using_backend_restores(self):
        before = kernels.backend_name()
        with kernels.using_backend("numpy"):
            assert kernels.backend_name() == "numpy"
        assert kernels.backend_name() == before

    @needs_native
    def test_uint64_keys_fall_back_per_call(self):
        """16 B tuples (uint64 keys) are outside the native dtype set;
        the dispatch layer must route them to NumPy, not crash."""
        keys = np.arange(100, dtype=np.uint64)
        with kernels.using_backend("native"):
            parts, hist, _ = kernels.hash_histogram(
                keys, 16, True, parts_out=np.empty(100, dtype=np.uint8)
            )
        with kernels.using_backend("numpy"):
            ref_parts, ref_hist, _ = kernels.hash_histogram(
                keys, 16, True, parts_out=np.empty(100, dtype=np.uint8)
            )
        assert np.array_equal(parts, ref_parts)
        assert np.array_equal(hist, ref_hist)

    @needs_native
    def test_non_contiguous_keys_fall_back_per_call(self):
        base = np.arange(200, dtype=np.uint32)
        strided = base[::2]
        assert not strided.flags.c_contiguous or strided.base is not None
        with kernels.using_backend("native"):
            parts, hist, _ = kernels.hash_histogram(strided[::1], 8, True)
        with kernels.using_backend("numpy"):
            ref = kernels.hash_histogram(np.ascontiguousarray(strided), 8, True)
        assert np.array_equal(hist, ref[1])

    @needs_native
    def test_native_abi_and_library_cache(self):
        from repro.kernels.build import library_path

        path = library_path()
        assert path.exists()
        # rebuilding is a no-op (content-addressed cache hit)
        assert kernels.build_native() == path


# ---------------------------------------------------------------------------
# 4. Zero-copy data plane


class TestZeroCopy:
    def _output(self, n=10_000, num_partitions=64):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
            np.uint32
        )
        config = PartitionerConfig(num_partitions=num_partitions)
        return FpgaPartitioner(config).partition(keys)

    def test_partition_views_share_one_column(self):
        """Every per-partition array is a view into the single sorted
        column — no per-partition copies anywhere in the output."""
        output = self._output()
        assert isinstance(output.partition_keys, PartitionSlices)
        column = output.partition_keys._column
        for p in range(output.num_partitions):
            view = output.partition_keys[p]
            if view.size:
                assert np.shares_memory(view, column)
                assert view.base is not None

    def test_payload_views_share_one_column(self):
        output = self._output()
        column = output.partition_payloads._column
        for p in range(output.num_partitions):
            view = output.partition_payloads[p]
            if view.size:
                assert np.shares_memory(view, column)

    def test_service_resolve_path_is_zero_copy(self):
        """The buffers a service client receives are views over the
        partitioner's backing column — resolve adds no copies."""
        from repro.service.service import (
            PartitionRequest,
            PartitionService,
            RequestStatus,
        )

        rng = np.random.default_rng(12)
        keys = rng.integers(0, 2**32, size=20_000, dtype=np.uint64).astype(
            np.uint32
        )
        config = PartitionerConfig(num_partitions=32)
        with PartitionService() as service:
            ticket = service.submit(
                PartitionRequest(relation=keys, config=config)
            )
            response = ticket.result(timeout=30)
        assert response.status is RequestStatus.OK
        output = response.output
        assert isinstance(output.partition_keys, PartitionSlices)
        column = output.partition_keys._column
        nonempty = [
            output.partition_keys[p]
            for p in range(output.num_partitions)
            if output.partition_keys[p].size
        ]
        assert nonempty, "test relation must fill at least one partition"
        for view in nonempty:
            assert np.shares_memory(view, column)

    @needs_native
    def test_thread_engine_scatter_is_zero_copy(self):
        """The thread backend scatters straight into the output arrays
        the partitioner hands out — the views alias those buffers."""
        from repro.exec.engine import ExecutionEngine

        rng = np.random.default_rng(13)
        keys = rng.integers(0, 2**32, size=200_000, dtype=np.uint64).astype(
            np.uint32
        )
        config = PartitionerConfig(num_partitions=64)
        with kernels.using_backend("native"):
            with ExecutionEngine(workers=2, kind="thread") as engine:
                output = FpgaPartitioner(config, engine=engine).partition(keys)
        column = output.partition_keys._column
        assert column.dtype == np.uint32
        assert sum(
            output.partition_keys[p].size
            for p in range(output.num_partitions)
        ) == int(output.counts.sum())
        for p in range(output.num_partitions):
            view = output.partition_keys[p]
            if view.size:
                assert np.shares_memory(view, column)
