"""Cycle-level PAD overflow semantics (Section 5.4).

"The detection time for the failure of the PAD mode is random and
depends on the arrival order of the tuples ... The failure is detected
when one of the counters for a partition exceeds the preassigned fixed
size. In the worst case, this might happen at the very end of a
partitioning run."  These tests observe exactly that on the simulated
circuit: the overflow is raised by the write-back module's offset
counter, the detection point moves with the arrival order, and
front-loaded skew aborts early while back-loaded skew aborts late.
"""

import numpy as np
import pytest

from repro.core.circuit import PartitionerCircuit
from repro.core.modes import HashKind, OutputMode, PartitionerConfig
from repro.errors import PartitionOverflowError


def config(pad_tuples=8):
    return PartitionerConfig(
        num_partitions=16,
        output_mode=OutputMode.PAD,
        hash_kind=HashKind.RADIX,
        pad_tuples=pad_tuples,
    )


def run(keys):
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    return PartitionerCircuit(config()).run(keys, payloads)


class TestDetection:
    def test_skewed_run_overflows(self):
        keys = np.zeros(2048, dtype=np.uint32)  # everything -> partition 0
        with pytest.raises(PartitionOverflowError) as excinfo:
            run(keys)
        assert excinfo.value.partition == 0

    def test_lines_written_before_abort_vary_with_order(self):
        """Detection depends on arrival order: heavy hitters up front
        abort after few lines; spread out, the run gets much further."""
        n = 2048
        front = np.zeros(n, dtype=np.uint32)
        front[n // 2 :] = (np.arange(n // 2) % 15 + 1).astype(np.uint32)
        back = front[::-1].copy()

        def lines_before_abort(keys):
            payloads = np.arange(n, dtype=np.uint32)
            circuit = PartitionerCircuit(config())
            try:
                circuit.run(keys, payloads)
            except PartitionOverflowError:
                return circuit.write_back.lines_out
            raise AssertionError("expected an overflow")

        early = lines_before_abort(front)
        late = lines_before_abort(back)
        assert late > 2 * early

    def test_balanced_run_never_aborts(self):
        keys = (np.arange(2048) % 16).astype(np.uint32)
        result = run(keys)
        assert sum(len(k) for k in result.partitions_keys) == 2048

    def test_hist_mode_handles_the_same_input(self):
        """'Then, the procedure has to start from the beginning in HIST
        mode, which is able [to] handle any Zipf skew factor.'"""
        keys = np.zeros(512, dtype=np.uint32)
        payloads = np.arange(512, dtype=np.uint32)
        hist = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.HIST,
            hash_kind=HashKind.RADIX,
        )
        result = PartitionerCircuit(hist).run(keys, payloads)
        assert len(result.partitions_keys[0]) == 512

    def test_error_carries_diagnostics(self):
        keys = np.zeros(1024, dtype=np.uint32)
        with pytest.raises(PartitionOverflowError) as excinfo:
            run(keys)
        error = excinfo.value
        assert error.capacity > 0
        assert "overflowed" in str(error)
