"""Tests for the TLB model and partitioning TLB behaviour (Section 3.1)."""

import pytest

from repro.cpu.tlb import (
    Tlb,
    TlbReport,
    multipass_scatter_tlb_misses,
    naive_scatter_tlb_misses,
    swwc_scatter_tlb_misses,
)
from repro.errors import ConfigurationError
from repro.workloads.distributions import random_keys


class TestTlb:
    def test_hit_after_miss(self):
        tlb = Tlb(entries=4)
        assert not tlb.access(0)
        assert tlb.access(100)  # same 4K page

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, page_bytes=4096)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(8192)  # evicts page 0
        assert not tlb.access(0)

    def test_touch_refreshes(self):
        tlb = Tlb(entries=2, page_bytes=4096)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(0)       # page 0 now MRU
        tlb.access(8192)    # evicts page 1
        assert tlb.access(0)
        assert not tlb.access(4096)

    def test_miss_rate(self):
        tlb = Tlb(entries=4)
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_flush(self):
        tlb = Tlb(entries=4)
        tlb.access(0)
        tlb.flush()
        assert not tlb.access(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Tlb(entries=0)


@pytest.fixture(scope="module")
def keys():
    return random_keys(30000, seed=1)


class TestStrategies:
    def test_small_fanout_all_cheap(self, keys):
        """Below the TLB reach, every strategy is fine."""
        for fn in (naive_scatter_tlb_misses, swwc_scatter_tlb_misses):
            report = fn(keys, 16)
            assert report.misses_per_tuple < 0.05

    def test_naive_thrashes_beyond_tlb_reach(self, keys):
        """Section 3.1: the scatter 'is limited by TLB misses'."""
        report = naive_scatter_tlb_misses(keys, 4096)
        assert report.misses_per_tuple > 0.8

    def test_swwc_tames_the_thrash(self, keys):
        """[3]/[30]: buffers prevent 'frequent TLB misses without the
        need of reducing the partitioning fan-out'."""
        naive = naive_scatter_tlb_misses(keys, 4096)
        swwc = swwc_scatter_tlb_misses(keys, 4096)
        assert swwc.misses < 0.35 * naive.misses

    def test_multipass_bounds_per_pass_fanout(self, keys):
        """[21]: two passes of sqrt(fanout) each stay TLB-resident."""
        report = multipass_scatter_tlb_misses(keys, 4096, passes=2)
        assert report.misses_per_tuple < 0.05

    def test_single_pass_multipass_equals_naive_radix(self, keys):
        one_pass = multipass_scatter_tlb_misses(keys, 4096, passes=1)
        naive = naive_scatter_tlb_misses(keys, 4096, use_hash=False)
        assert one_pass.misses == pytest.approx(naive.misses, rel=0.02)

    def test_larger_buffers_fewer_flush_touches(self, keys):
        small = swwc_scatter_tlb_misses(keys, 1024, buffer_tuples=4)
        large = swwc_scatter_tlb_misses(keys, 1024, buffer_tuples=16)
        assert large.misses <= small.misses

    def test_report_fields(self, keys):
        report = naive_scatter_tlb_misses(keys, 64)
        assert isinstance(report, TlbReport)
        assert report.tuples == keys.shape[0]

    def test_bigger_tlb_helps_naive(self, keys):
        small = naive_scatter_tlb_misses(keys, 512, tlb=Tlb(entries=64))
        big = naive_scatter_tlb_misses(keys, 512, tlb=Tlb(entries=1024))
        assert big.misses < 0.2 * small.misses

    def test_invalid_passes(self, keys):
        with pytest.raises(ConfigurationError):
            multipass_scatter_tlb_misses(keys, 64, passes=0)
