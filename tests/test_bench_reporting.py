"""Tests for the benchmark reporting helpers."""

import pytest

from repro.bench import (
    ExperimentTable,
    format_table,
    monotonically_decreasing,
    monotonically_increasing,
    relative_error,
    shape_check,
)
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment_and_structure(self):
        text = format_table(
            "T", ["name", "value"], [["a", 1.0], ["bb", 22.5]]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert len(lines) == 6

    def test_note_appended(self):
        text = format_table("T", ["x"], [[1]], note="hello")
        assert text.endswith("hello")

    def test_float_formatting(self):
        text = format_table("T", ["x"], [[1234.5678], [0.1234], [3.5]])
        assert "1235" in text
        assert "0.1234" in text
        assert "3.50" in text


class TestExperimentTable:
    def make(self):
        return ExperimentTable(
            experiment_id="Figure X",
            title="demo",
            headers=["a", "b"],
            rows=[[1, 2], [3, 4]],
        )

    def test_render_includes_id(self):
        assert "[Figure X]" in self.make().render()

    def test_column(self):
        assert self.make().column("b") == [2, 4]

    def test_unknown_column(self):
        with pytest.raises(ConfigurationError):
            self.make().column("z")

    def test_emit_prints(self, capsys):
        self.make().emit()
        out = capsys.readouterr().out
        assert "demo" in out


class TestShapeHelpers:
    def test_shape_check_passes(self):
        shape_check(True, "Figure 1", "fine")

    def test_shape_check_message(self):
        with pytest.raises(AssertionError, match="Figure 1.*broken"):
            shape_check(False, "Figure 1", "broken")

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        with pytest.raises(ConfigurationError):
            relative_error(1, 0)

    def test_monotone_helpers(self):
        assert monotonically_increasing([1, 2, 2, 3])
        assert not monotonically_increasing([1, 0.5])
        assert monotonically_increasing([1, 0.99], tolerance=0.02)
        assert monotonically_decreasing([3, 2, 2, 1])
        assert not monotonically_decreasing([1, 2])
