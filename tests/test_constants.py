"""Sanity tests pinning the transcribed paper constants and their
derived relationships."""

import pytest

from repro import constants


class TestGeometry:
    def test_cache_line_and_pages(self):
        assert constants.CACHE_LINE_BYTES == 64
        assert constants.PAGE_BYTES == 4 * 2**20
        assert constants.SHARED_MEMORY_BYTES == 96 * 2**30

    def test_supported_widths_divide_the_line(self):
        for width in constants.SUPPORTED_TUPLE_WIDTHS:
            assert constants.CACHE_LINE_BYTES % width == 0


class TestFpgaTiming:
    def test_clock(self):
        assert constants.FPGA_CLOCK_HZ == 200e6
        assert constants.FPGA_CLOCK_PERIOD_S == pytest.approx(5e-9)

    def test_latency_cycles_are_table3(self):
        assert constants.CYCLES_HASHING == 5
        assert constants.CYCLES_WRITE_COMBINER == 65_540
        assert constants.CYCLES_FIFOS == 4

    def test_writecomb_cycles_are_the_flush(self):
        """65540 ~= 8192 partitions x 8 BRAM slots + pipeline."""
        assert constants.CYCLES_WRITE_COMBINER == 8192 * 8 + 4

    def test_raw_wrapper_is_two_lines_per_cycle(self):
        """25.6 GB/s = one 64 B read + one 64 B write per 200 MHz
        cycle — the bandwidth at which the circuit is never starved."""
        per_cycle = constants.RAW_WRAPPER_BANDWIDTH_GBS * 1e9 / (
            constants.FPGA_CLOCK_HZ * constants.CACHE_LINE_BYTES
        )
        assert per_cycle == pytest.approx(2.0)


class TestDerivedRatios:
    def test_coherence_penalties_follow_table1(self):
        assert constants.COHERENCE_RANDOM_READ_PENALTY == pytest.approx(
            2.4876 / 1.1537
        )
        assert constants.COHERENCE_SEQ_READ_PENALTY == pytest.approx(
            0.1533 / 0.1381
        )

    def test_hybrid_penalty_is_the_table1_random_factor(self):
        assert constants.HYBRID_BUILD_PROBE_PENALTY == (
            constants.COHERENCE_RANDOM_READ_PENALTY
        )

    def test_figure9_anchor_values(self):
        fig9 = constants.FIGURE9_MEASURED_MTUPLES
        assert fig9["PAD/VRID"] == 514
        assert fig9["raw_fpga_pad"] == 1597
        assert fig9["wang_fpga"] == 256
        # the 1.7x improvement the abstract claims over [37]:
        # 436/256 ~= 1.7 for the directly comparable PAD/RID mode
        assert fig9["PAD/RID"] / fig9["wang_fpga"] == pytest.approx(
            1.7, abs=0.05
        )

    def test_bandwidth_anchor_points_present(self):
        fpga = constants.FPGA_BANDWIDTH_ALONE_GBS
        assert fpga[2.0 / 3.0] == 7.05
        assert fpga[0.5] == 6.97
        assert fpga[1.0 / 3.0] == 5.94

    def test_cpu_has_3x_fpga_bandwidth_headline(self):
        cpu_peak = max(constants.CPU_BANDWIDTH_ALONE_GBS.values())
        fpga_peak = max(constants.FPGA_BANDWIDTH_ALONE_GBS.values())
        assert cpu_peak / fpga_peak > 3.0


class TestWorkloadSizes:
    def test_table4_sizes(self):
        assert constants.WORKLOAD_A_TUPLES == 128 * 10**6
        assert constants.WORKLOAD_B_R_TUPLES == 16 * 2**20
        assert constants.WORKLOAD_B_S_TUPLES == 256 * 2**20
        assert constants.DEFAULT_NUM_PARTITIONS == 8192
