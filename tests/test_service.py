"""Tests for the partitioning service layer (repro.service)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ReproError
from repro.service import (
    AdmissionQueue,
    BackendFault,
    BatchingScheduler,
    CircuitBreaker,
    DegradationPolicy,
    FaultInjector,
    LatencyHistogram,
    PartitionRequest,
    PartitionService,
    QueueFullError,
    RequestStatus,
    ServiceMetrics,
    TokenBucket,
    request_signature,
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def assert_outputs_equal(left, right):
    assert np.array_equal(left.counts, right.counts)
    assert np.array_equal(
        left.lines_per_partition, right.lines_per_partition
    )
    for a, b in zip(left.partition_keys, right.partition_keys):
        assert np.array_equal(a, b)
    for a, b in zip(left.partition_payloads, right.partition_payloads):
        assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# AdmissionQueue


class TestAdmissionQueue:
    def test_priority_order_fifo_within_level(self):
        queue = AdmissionQueue(max_requests=10)
        queue.offer("low-1", priority=0, tuples=1)
        queue.offer("high-1", priority=2, tuples=1)
        queue.offer("low-2", priority=0, tuples=1)
        queue.offer("high-2", priority=2, tuples=1)
        order = [queue.take(0) for _ in range(4)]
        assert order == ["high-1", "high-2", "low-1", "low-2"]

    def test_bounded_rejection(self):
        queue = AdmissionQueue(max_requests=2)
        assert queue.offer("a", 0, 1) and queue.offer("b", 0, 1)
        assert not queue.offer("c", 0, 1)
        assert len(queue) == 2

    def test_tuple_budget(self):
        queue = AdmissionQueue(max_requests=100, max_tuples=1000)
        assert queue.offer("big", 0, 900)
        assert not queue.offer("too-much", 0, 200)
        assert queue.offer("fits", 0, 100)
        assert queue.tuples_queued == 1000

    def test_oversized_request_admitted_when_queue_empty(self):
        # a request larger than the whole tuple budget must not be
        # permanently unadmittable
        queue = AdmissionQueue(max_requests=4, max_tuples=100)
        assert queue.offer("huge", 0, 10**6)

    def test_retry_after_hint_uses_drain_rate(self):
        queue = AdmissionQueue(max_requests=4)
        queue.offer("a", 0, 5000)
        queue.note_drain_rate(10_000.0)
        assert queue.retry_after_hint() == pytest.approx(0.5)

    def test_retry_after_hint_bounded(self):
        queue = AdmissionQueue(max_requests=4)
        assert 0.01 <= queue.retry_after_hint() <= 5.0
        queue.offer("a", 0, 10**12)
        queue.note_drain_rate(1.0)
        assert queue.retry_after_hint() == 5.0

    def test_close_rejects_new_but_drains_old(self):
        queue = AdmissionQueue()
        queue.offer("queued", 0, 1)
        queue.close()
        assert not queue.offer("late", 0, 1)
        assert queue.take(0) == "queued"
        assert queue.take(0) is None

    def test_drain_respects_limit(self):
        queue = AdmissionQueue()
        for i in range(5):
            queue.offer(i, 0, 1)
        assert queue.drain(3) == [0, 1, 2]
        assert queue.drain(10) == [3, 4]
        assert queue.drain(0) == []

    def test_take_timeout(self):
        assert AdmissionQueue().take(timeout=0.01) is None

    def test_validation(self):
        with pytest.raises(ReproError):
            AdmissionQueue(max_requests=0)
        with pytest.raises(ReproError):
            AdmissionQueue(max_tuples=0)

    def test_queue_full_error_carries_hint(self):
        err = QueueFullError(depth=7, retry_after=0.25)
        assert err.depth == 7 and err.retry_after == 0.25
        assert "retry" in str(err)


# ---------------------------------------------------------------------------
# BatchingScheduler


class _Entry:
    def __init__(self, signature, tuples, tag=None):
        self.signature = signature
        self.tuples = tuples
        self.tag = tag


class TestBatchingScheduler:
    def test_signature_separates_configs(self):
        a = PartitionerConfig(num_partitions=64)
        b = PartitionerConfig(num_partitions=128)
        assert request_signature(a) == request_signature(a)
        assert request_signature(a) != request_signature(b)

    def test_coalesces_same_signature(self):
        sched = BatchingScheduler(max_batch_requests=8)
        batches = sched.form_batches([_Entry("s", 10) for _ in range(5)])
        assert len(batches) == 1
        assert len(batches[0]) == 5 and batches[0].total_tuples == 50

    def test_signature_groups_kept_apart(self):
        sched = BatchingScheduler()
        batches = sched.form_batches(
            [_Entry("a", 1), _Entry("b", 1), _Entry("a", 1)]
        )
        assert [b.signature for b in batches] == ["a", "b"]
        assert len(batches[0]) == 2

    def test_request_cap_opens_new_batch(self):
        sched = BatchingScheduler(max_batch_requests=2)
        batches = sched.form_batches([_Entry("s", 1) for _ in range(5)])
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_tuple_cap_opens_new_batch(self):
        sched = BatchingScheduler(max_batch_tuples=100, split_tuples=1000)
        batches = sched.form_batches([_Entry("s", 60), _Entry("s", 60)])
        assert [len(b) for b in batches] == [1, 1]

    def test_oversized_goes_solo_split(self):
        sched = BatchingScheduler(split_tuples=1000)
        batches = sched.form_batches(
            [_Entry("s", 10), _Entry("s", 5000), _Entry("s", 10)]
        )
        assert [b.split for b in batches] == [False, True]
        assert len(batches[0]) == 2 and len(batches[1]) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            BatchingScheduler(max_batch_requests=0)
        with pytest.raises(ReproError):
            BatchingScheduler(max_batch_tuples=0)
        with pytest.raises(ReproError):
            BatchingScheduler(linger_s=-1)

    def test_collect_drains_queue(self):
        queue = AdmissionQueue()
        for i in range(4):
            queue.offer(_Entry("s", 1, tag=i), priority=0, tuples=1)
        sched = BatchingScheduler(linger_s=0.0)
        batches = sched.collect(queue, timeout=0.1)
        assert len(batches) == 1
        assert [e.tag for e in batches[0].entries] == [0, 1, 2, 3]
        assert len(queue) == 0

    def test_collect_timeout_returns_empty(self):
        assert BatchingScheduler().collect(AdmissionQueue(), 0.01) == []


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_histogram_stats(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.008):
            hist.record(value)
        assert hist.count == 4
        assert hist.mean_seconds == pytest.approx(0.00375)
        assert hist.max_seconds == 0.008
        assert hist.quantile_seconds(0.0) <= hist.quantile_seconds(1.0)

    def test_histogram_export(self):
        hist = LatencyHistogram()
        hist.record(0.5)
        data = hist.to_dict()
        assert data["count"] == 1
        assert len(data["log2_us_buckets"]) == 27

    def test_counters_and_export(self):
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.increment("completed", 10)
        metrics.observe("execute", 0.01)
        metrics.observe_batch(4)
        metrics.set_gauge("queue_depth", 3)
        clock.advance(2.0)
        data = metrics.to_dict()
        assert data["counters"]["completed"] == 10
        assert data["counters"]["batches"] == 1
        assert data["gauges"]["queue_depth"] == 3
        assert data["throughput_rps"] == pytest.approx(5.0)
        assert metrics.mean_batch_size() == pytest.approx(4.0)
        assert metrics.throughput_rps() == pytest.approx(5.0)

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServiceMetrics().increment("nope")

    def test_to_table_renders(self):
        metrics = ServiceMetrics()
        metrics.increment("completed")
        metrics.observe("total", 0.005)
        table = metrics.to_table()
        assert table.headers[0] == "stage"
        assert len(table.rows) == 3
        assert "completed 1" in table.note


# ---------------------------------------------------------------------------
# Degradation primitives


class TestDegradation:
    def test_fault_injector_fail_next(self):
        injector = FaultInjector()
        injector.check()  # no fault armed
        injector.fail_next(2)
        with pytest.raises(BackendFault):
            injector.check()
        with pytest.raises(BackendFault):
            injector.check()
        injector.check()
        assert injector.injected == 2

    def test_fault_injector_rate_deterministic(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(fail_rate=0.5, seed=42)
            run = []
            for _ in range(20):
                try:
                    injector.check()
                    run.append(False)
                except BackendFault:
                    run.append(True)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_fault_injector_validation(self):
        with pytest.raises(ReproError):
            FaultInjector(fail_rate=1.5)

    def test_token_bucket_drains_and_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(
            tuples_per_second=1000, burst_tuples=1000, clock=clock
        )
        assert bucket.try_acquire(800)
        assert not bucket.try_acquire(800)  # saturated
        clock.advance(0.7)  # +700 tuples of capacity
        assert bucket.try_acquire(800)

    def test_token_bucket_burst_cap(self):
        clock = FakeClock()
        bucket = TokenBucket(
            tuples_per_second=1000, burst_tuples=500, clock=clock
        )
        clock.advance(100.0)
        assert not bucket.try_acquire(501)
        assert bucket.try_acquire(500)

    def test_token_bucket_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(tuples_per_second=0)

    def test_circuit_breaker_state_machine(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=1.0, clock=clock
        )
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.allow()  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_failure()  # probe failed -> re-open immediately
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(1.5)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_policy_refusal_reasons(self):
        clock = FakeClock()
        bucket = TokenBucket(
            tuples_per_second=100, burst_tuples=100, clock=clock
        )
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=10.0, clock=clock
        )
        policy = DegradationPolicy(saturation=bucket, breaker=breaker)
        assert policy.admit_fpga(50) is None
        assert policy.admit_fpga(100) == "saturated"
        policy.record_outcome(False)
        assert policy.admit_fpga(1) == "breaker-open"


# ---------------------------------------------------------------------------
# PartitionService end-to-end


@pytest.fixture
def relations(rng):
    sizes = rng.integers(200, 2000, size=12)
    return [
        rng.integers(0, 2**32, size=int(n), dtype=np.uint64).astype(
            np.uint32
        )
        for n in sizes
    ]


class TestPartitionService:
    def test_results_byte_identical_to_direct_calls(self, relations):
        config = PartitionerConfig(num_partitions=64)
        with PartitionService(max_batch_requests=8) as service:
            tickets = [
                service.submit(PartitionRequest(relation=r, config=config))
                for r in relations
            ]
            responses = [t.result(timeout=30) for t in tickets]
        reference = FpgaPartitioner(config)
        for response, keys in zip(responses, relations):
            assert response.status is RequestStatus.OK
            assert response.backend == "fpga"
            assert not response.degraded
            assert_outputs_equal(response.output, reference.partition(keys))

    def test_mixed_configs_batch_separately_and_stay_correct(self, relations):
        configs = [
            PartitionerConfig(num_partitions=32),
            PartitionerConfig(num_partitions=64, output_mode=OutputMode.PAD,
                              pad_tuples=4096),
        ]
        with PartitionService() as service:
            tickets = [
                service.submit(
                    PartitionRequest(relation=r, config=configs[i % 2])
                )
                for i, r in enumerate(relations)
            ]
            responses = [t.result(timeout=30) for t in tickets]
        for i, (response, keys) in enumerate(zip(responses, relations)):
            assert response.status is RequestStatus.OK
            reference = FpgaPartitioner(configs[i % 2])
            assert_outputs_equal(response.output, reference.partition(keys))

    def test_oversized_request_split_solo(self, rng):
        keys = rng.integers(0, 2**32, size=50_000, dtype=np.uint64).astype(
            np.uint32
        )
        config = PartitionerConfig(num_partitions=64)
        with PartitionService(split_tuples=10_000) as service:
            response = service.submit(
                PartitionRequest(relation=keys, config=config)
            ).result(timeout=30)
        assert response.status is RequestStatus.OK
        assert response.batch_size == 1
        assert service.metrics.to_dict()["counters"]["split_requests"] == 1
        assert_outputs_equal(
            response.output, FpgaPartitioner(config).partition(keys)
        )

    def test_degrades_to_cpu_after_retries(self, relations):
        injector = FaultInjector()
        policy = DegradationPolicy(fault_injector=injector)
        with PartitionService(
            policy=policy, max_retries=1, retry_backoff_s=0.0
        ) as service:
            injector.fail_next(10)  # > retries: all FPGA attempts fault
            response = service.submit(
                PartitionRequest(relation=relations[0])
            ).result(timeout=30)
        assert response.status is RequestStatus.OK
        assert response.degraded and response.backend == "cpu"
        assert response.attempts == 2
        counters = service.metrics.to_dict()["counters"]
        assert counters["degraded"] == 1
        assert counters["retries"] == 1
        assert counters["cpu_invocations"] == 1

    def test_transient_fault_recovers_on_retry(self, relations):
        injector = FaultInjector()
        policy = DegradationPolicy(fault_injector=injector)
        with PartitionService(
            policy=policy, max_retries=2, retry_backoff_s=0.0
        ) as service:
            injector.fail_next(1)
            response = service.submit(
                PartitionRequest(relation=relations[0])
            ).result(timeout=30)
        assert response.status is RequestStatus.OK
        assert response.backend == "fpga" and not response.degraded
        assert response.attempts == 2

    def test_open_breaker_routes_straight_to_cpu(self, relations):
        clock_breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        clock_breaker.record_failure()  # pre-open
        policy = DegradationPolicy(breaker=clock_breaker)
        with PartitionService(policy=policy) as service:
            response = service.submit(
                PartitionRequest(relation=relations[0])
            ).result(timeout=30)
        assert response.status is RequestStatus.OK
        assert response.degraded and response.degrade_reason == "breaker-open"

    def test_rejection_carries_retry_after(self, relations):
        with PartitionService(
            max_queue_requests=1, linger_s=0.2
        ) as service:
            rejected = None
            for keys in relations * 4:
                ticket = service.submit(PartitionRequest(relation=keys))
                if ticket.done():
                    response = ticket.result()
                    if response.status is RequestStatus.REJECTED:
                        rejected = response
                        break
            assert rejected is not None
            assert rejected.retry_after and rejected.retry_after > 0
            assert service.metrics.to_dict()["counters"]["rejected"] >= 1

    def test_raise_on_reject(self, relations):
        with PartitionService(
            max_queue_requests=1, linger_s=0.2
        ) as service:
            with pytest.raises(QueueFullError):
                for keys in relations * 4:
                    service.submit(
                        PartitionRequest(relation=keys),
                        raise_on_reject=True,
                    )

    def test_expired_deadline_times_out(self, relations):
        with PartitionService() as service:
            response = service.submit(
                PartitionRequest(relation=relations[0], deadline_s=-0.001)
            ).result(timeout=30)
        assert response.status is RequestStatus.TIMED_OUT
        assert service.metrics.to_dict()["counters"]["timed_out"] == 1

    def test_ticket_wait_timeout(self, relations):
        service = PartitionService()  # never started -> never resolves
        with pytest.raises(ReproError):
            service.submit(PartitionRequest(relation=relations[0]))
        service.stop()

    def test_stop_drains_queued_work(self, relations):
        service = PartitionService(linger_s=0.0).start()
        tickets = [
            service.submit(PartitionRequest(relation=r)) for r in relations
        ]
        service.stop()
        for ticket in tickets:
            assert ticket.result(timeout=5).status in (
                RequestStatus.OK,
                RequestStatus.TIMED_OUT,
            )
        with pytest.raises(ReproError):
            service.start()  # stopped services do not restart

    def test_blocking_partition_helper(self, relations):
        config = PartitionerConfig(num_partitions=32)
        with PartitionService() as service:
            response = service.partition(
                relations[0], config=config, timeout=30
            )
        assert response.status is RequestStatus.OK
        assert_outputs_equal(
            response.output,
            FpgaPartitioner(config).partition(relations[0]),
        )

    def test_metrics_account_every_request(self, relations):
        with PartitionService() as service:
            tickets = [
                service.submit(PartitionRequest(relation=r))
                for r in relations
            ]
            for ticket in tickets:
                ticket.result(timeout=30)
            counters = service.metrics.to_dict()["counters"]
        assert counters["submitted"] == len(relations)
        assert counters["admitted"] == counters["submitted"]
        assert counters["completed"] == len(relations)
        assert counters["fpga_invocations"] >= 1
        latency = service.metrics.to_dict()["latency"]
        assert latency["total"]["count"] == len(relations)
        assert latency["queue_wait"]["count"] == len(relations)


# ---------------------------------------------------------------------------
# Regression tests: service-tier bugfix sweep


class TestHalfOpenSingleProbe:
    def _half_open_breaker(self, clock) -> CircuitBreaker:
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        return breaker

    def test_half_open_admits_exactly_one_caller(self):
        clock = FakeClock()
        breaker = self._half_open_breaker(clock)
        assert breaker.allow()  # the probe
        # the bug: every further caller in the window was admitted too
        assert not breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_single_probe_under_contention(self):
        clock = FakeClock()
        breaker = self._half_open_breaker(clock)
        admitted = []
        start = threading.Barrier(8)

        def worker():
            start.wait()
            if breaker.allow():
                admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1

    def test_failed_probe_reopens_with_fresh_probe(self):
        clock = FakeClock()
        breaker = self._half_open_breaker(clock)
        assert breaker.allow()
        breaker.record_failure()  # probe failed -> re-open
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(1.5)
        # the new half-open window gets its own single probe
        assert breaker.allow()
        assert not breaker.allow()

    def test_release_probe_hands_back_the_claim(self):
        clock = FakeClock()
        breaker = self._half_open_breaker(clock)
        assert breaker.allow()
        breaker.release_probe()
        assert breaker.allow()  # claim returned, next caller may probe

    def test_policy_refusal_does_not_wedge_half_open(self):
        clock = FakeClock()
        bucket = TokenBucket(
            tuples_per_second=100, burst_tuples=100, clock=clock
        )
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        policy = DegradationPolicy(saturation=bucket, breaker=breaker)
        policy.record_outcome(False)
        clock.advance(1.5)
        # allow() claims the probe but saturation refuses the work; the
        # claim must be released or the breaker stays wedged half-open
        assert policy.admit_fpga(1000) == "oversized"
        assert policy.admit_fpga(50) is None


class TestTokenBucketValidation:
    def test_explicit_zero_burst_raises(self):
        # the bug: burst_tuples=0 was falsy and silently became `rate`
        with pytest.raises(ReproError):
            TokenBucket(tuples_per_second=100, burst_tuples=0)

    def test_negative_burst_raises(self):
        with pytest.raises(ReproError):
            TokenBucket(tuples_per_second=100, burst_tuples=-5)

    def test_omitted_burst_still_defaults_to_rate(self):
        assert TokenBucket(tuples_per_second=250).burst == 250.0

    def test_oversized_is_distinct_from_saturated(self):
        clock = FakeClock()
        bucket = TokenBucket(
            tuples_per_second=100, burst_tuples=100, clock=clock
        )
        policy = DegradationPolicy(saturation=bucket)
        # larger than burst: can never be admitted however long we wait
        assert policy.admit_fpga(101) == "oversized"
        # within burst: admitted now, saturated on the immediate retry
        assert policy.admit_fpga(100) is None
        assert policy.admit_fpga(100) == "saturated"
        clock.advance(10.0)
        assert policy.admit_fpga(100) is None  # refilled
        assert policy.admit_fpga(101) == "oversized"  # still never


class TestQuantileEdges:
    def test_q0_returns_lowest_occupied_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.008)  # ~8 ms -> the 8192 us bucket
        # the bug: q=0 answered 1 us regardless of where the data sat
        assert hist.quantile_seconds(0.0) >= 0.004
        assert hist.quantile_seconds(0.0) <= 0.008192

    def test_overflow_bucket_clamps_to_max_seconds(self):
        hist = LatencyHistogram()
        hist.record(120.0)  # beyond the ~33.6 s bucket ladder
        # the bug: the open-ended bucket answered its fixed ~67 s bound
        assert hist.quantile_seconds(0.5) == pytest.approx(120.0)
        assert hist.quantile_seconds(1.0) == pytest.approx(120.0)

    def test_bounds_never_exceed_observed_max(self):
        hist = LatencyHistogram()
        hist.record(0.003)  # bucket bound 4096 us > the observation
        assert hist.quantile_seconds(0.99) == pytest.approx(0.003)

    def test_empty_histogram_and_validation(self):
        hist = LatencyHistogram()
        assert hist.quantile_seconds(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile_seconds(-0.1)
        with pytest.raises(ValueError):
            hist.quantile_seconds(1.1)

    def test_quantiles_monotone_in_q(self):
        hist = LatencyHistogram()
        for value in (0.0001, 0.001, 0.01, 0.1, 1.0):
            hist.record(value)
        qs = [hist.quantile_seconds(q) for q in (0.0, 0.25, 0.5, 0.95, 1.0)]
        assert qs == sorted(qs)
        assert qs[-1] <= hist.max_seconds
