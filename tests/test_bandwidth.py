"""Tests for the Figure 2 bandwidth model."""

import pytest

from repro.platform.bandwidth import Agent, BandwidthModel, read_fraction
from repro.errors import ConfigurationError


@pytest.fixture
def bw():
    return BandwidthModel()


class TestReadFraction:
    @pytest.mark.parametrize(
        "r,frac", [(2.0, 2 / 3), (1.0, 0.5), (0.5, 1 / 3), (0.0, 0.0)]
    )
    def test_conversion(self, r, frac):
        assert read_fraction(r) == pytest.approx(frac)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            read_fraction(-0.1)


class TestFpgaCurve:
    def test_section48_anchors(self, bw):
        """The exact B(r) values quoted in Section 4.8."""
        assert bw.bandwidth_for_ratio(Agent.FPGA, 2.0) == pytest.approx(7.05)
        assert bw.bandwidth_for_ratio(Agent.FPGA, 1.0) == pytest.approx(6.97)
        assert bw.bandwidth_for_ratio(Agent.FPGA, 0.5) == pytest.approx(5.94)

    def test_roughly_flat_when_read_heavy(self, bw):
        high = bw.bandwidth_gbs(Agent.FPGA, 1.0)
        mid = bw.bandwidth_gbs(Agent.FPGA, 0.6)
        assert abs(high - mid) < 0.2

    def test_sags_when_write_heavy(self, bw):
        assert bw.bandwidth_gbs(Agent.FPGA, 0.0) < bw.bandwidth_gbs(
            Agent.FPGA, 0.5
        )

    def test_around_6_5_overall(self, bw):
        """Section 2.1: 'around 6.5 GB/s ... with an equal amount of
        reads and writes'."""
        assert bw.bandwidth_gbs(Agent.FPGA, 0.5) == pytest.approx(6.5, abs=0.5)


class TestCpuCurve:
    def test_sequential_read_ceiling(self, bw):
        assert bw.bandwidth_gbs(Agent.CPU, 1.0) > 25

    def test_monotone_decreasing(self, bw):
        samples = [bw.bandwidth_gbs(Agent.CPU, f / 10) for f in range(11)]
        assert samples == sorted(samples)

    def test_cpu_above_fpga_everywhere(self, bw):
        """Figure 2's headline: the CPU has ~3x the FPGA's bandwidth."""
        for f in range(11):
            frac = f / 10
            assert bw.bandwidth_gbs(Agent.CPU, frac) > bw.bandwidth_gbs(
                Agent.FPGA, frac
            )

    def test_3x_gap_at_read_heavy_mix(self, bw):
        ratio = bw.bandwidth_gbs(Agent.CPU, 1.0) / bw.bandwidth_gbs(
            Agent.FPGA, 1.0
        )
        assert ratio > 3.0


class TestInterference:
    def test_both_agents_lose(self, bw):
        for agent in Agent:
            alone = bw.bandwidth_gbs(agent, 0.5)
            interfered = bw.bandwidth_gbs(agent, 0.5, interfered=True)
            assert interfered < alone

    def test_interference_factors(self, bw):
        cpu_ratio = bw.bandwidth_gbs(Agent.CPU, 0.5, True) / bw.bandwidth_gbs(
            Agent.CPU, 0.5
        )
        assert cpu_ratio == pytest.approx(0.65)


class TestApi:
    def test_string_agents(self, bw):
        assert bw.bandwidth_gbs("fpga", 0.5) == bw.bandwidth_gbs(Agent.FPGA, 0.5)

    def test_bytes_per_second(self, bw):
        assert bw.bytes_per_second(Agent.FPGA, 0.5) == pytest.approx(6.97e9)

    def test_out_of_range_fraction(self, bw):
        with pytest.raises(ConfigurationError):
            bw.bandwidth_gbs(Agent.CPU, 1.5)

    def test_sweep_shape(self, bw):
        points = bw.sweep(Agent.CPU, steps=11)
        assert len(points) == 11
        assert points[0][0] == 1.0 and points[-1][0] == 0.0

    def test_sweep_validation(self, bw):
        with pytest.raises(ConfigurationError):
            bw.sweep(Agent.CPU, steps=1)

    def test_custom_curves(self):
        flat = BandwidthModel(fpga_points={0.0: 25.6, 1.0: 25.6})
        assert flat.bandwidth_gbs(Agent.FPGA, 0.37) == pytest.approx(25.6)
