"""Concurrency stress test for the partition service (satellite 3).

Eight client threads hammer one :class:`PartitionService` with mixed
priorities, sizes and configs through a deliberately small admission
queue, so every control path fires: coalesced batches, splits,
rejections with backpressure, and (thread-local) retries after
rejection.  The invariants checked are the service's contract:

* every admitted request resolves — completed or timed out, never lost;
* every completed result is byte-identical to a direct
  :class:`~repro.core.partitioner.FpgaPartitioner` call;
* every rejected request carries a positive ``retry_after`` hint.

The workload is sized to finish comfortably inside CI budgets (a few
seconds on one core) and is additionally *time-bounded*: clients stop
submitting once ``REPRO_STRESS_BUDGET_S`` (default 120 s) of wall
clock has elapsed, so a slow runner degrades to a smaller workload
instead of a blown CI budget; ``timeout`` guards make a hang fail fast
instead of wedging the suite.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.service import (
    PartitionRequest,
    PartitionService,
    Priority,
    RequestStatus,
)

CLIENT_THREADS = 8
REQUESTS_PER_CLIENT = 25
RESULT_TIMEOUT_S = 60.0
#: wall-clock cap on the submission phase (CI sets this explicitly)
STRESS_BUDGET_S = float(os.environ.get("REPRO_STRESS_BUDGET_S", "120"))

CONFIGS = (
    PartitionerConfig(num_partitions=32),
    PartitionerConfig(num_partitions=64),
)
PRIORITIES = (Priority.LOW, Priority.NORMAL, Priority.HIGH)


def _client(client_id, service, barrier, results, errors, deadline):
    """One client: submit a mixed workload, wait for every ticket."""
    rng = np.random.default_rng(1000 + client_id)
    try:
        barrier.wait(timeout=10)
        for i in range(REQUESTS_PER_CLIENT):
            if time.monotonic() > deadline:
                break  # budget exhausted: stop submitting, keep invariants
            size = int(rng.integers(128, 3000))
            keys = rng.integers(0, 2**32, size=size, dtype=np.uint64).astype(
                np.uint32
            )
            request = PartitionRequest(
                relation=keys,
                config=CONFIGS[(client_id + i) % len(CONFIGS)],
                priority=PRIORITIES[i % len(PRIORITIES)],
            )
            ticket = service.submit(request)
            response = ticket.result(timeout=RESULT_TIMEOUT_S)
            results.append((request, response))
            if response.status is RequestStatus.REJECTED:
                # honour the backpressure hint (capped to keep CI fast)
                threading.Event().wait(min(0.05, response.retry_after))
    except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
        errors.append((client_id, repr(exc)))


def test_stress_mixed_priority_clients():
    results = []
    errors = []
    barrier = threading.Barrier(CLIENT_THREADS)
    deadline = time.monotonic() + STRESS_BUDGET_S
    with PartitionService(
        max_queue_requests=32,  # small on purpose: force rejections
        max_batch_requests=16,
        linger_s=0.0005,
    ) as service:
        threads = [
            threading.Thread(
                target=_client,
                args=(i, service, barrier, results, errors, deadline),
                name=f"client-{i}",
            )
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=RESULT_TIMEOUT_S * 2)
            assert not thread.is_alive(), "client thread hung"
    assert not errors, errors

    # time-bounding may shrink the workload on a very slow runner, but
    # every *submitted* request must have resolved
    total = len(results)
    assert 0 < total <= CLIENT_THREADS * REQUESTS_PER_CLIENT

    by_status = {}
    for _, response in results:
        by_status.setdefault(response.status, []).append(response)
    completed = by_status.get(RequestStatus.OK, [])
    rejected = by_status.get(RequestStatus.REJECTED, [])
    timed_out = by_status.get(RequestStatus.TIMED_OUT, [])

    # nothing is lost or failed: admitted -> completed or timed out
    assert len(completed) + len(rejected) + len(timed_out) == total
    assert RequestStatus.FAILED not in by_status
    assert completed, "no request completed"

    # metrics agree with client-side observations
    counters = service.metrics.to_dict()["counters"]
    assert counters["submitted"] == total
    assert counters["admitted"] == len(completed) + len(timed_out)
    assert counters["rejected"] == len(rejected)
    assert counters["completed"] == len(completed)
    assert counters["timed_out"] == len(timed_out)

    # every rejection carries a usable backpressure hint
    for response in rejected:
        assert response.retry_after is not None and response.retry_after > 0

    # byte-identity against direct solo partitioner calls
    references = {cfg: FpgaPartitioner(cfg) for cfg in CONFIGS}
    for request, response in results:
        if response.status is not RequestStatus.OK:
            continue
        assert response.backend == "fpga" and not response.degraded
        direct = references[request.config].partition(request.relation)
        assert np.array_equal(response.output.counts, direct.counts)
        for a, b in zip(
            response.output.partition_keys, direct.partition_keys
        ):
            assert np.array_equal(a, b)
        for a, b in zip(
            response.output.partition_payloads, direct.partition_payloads
        ):
            assert np.array_equal(a, b)

    # with 8 concurrent clients the scheduler should actually coalesce
    assert service.metrics.mean_batch_size() > 1.0


def test_concurrent_submit_snapshot_and_export():
    """Metrics readers race the writers without tearing (satellite of
    the gateway PR): ``snapshot()`` and the Prometheus exporter are
    called continuously from reader threads while writer threads
    submit, and every sampled snapshot must be internally consistent
    and monotone in time."""
    from repro.obs.export import prometheus_from_snapshot

    writer_threads = 4
    reader_threads = 3
    errors = []
    samples = []
    stop = threading.Event()
    deadline = time.monotonic() + min(STRESS_BUDGET_S, 20.0)

    def writer(writer_id, service):
        rng = np.random.default_rng(2000 + writer_id)
        try:
            for i in range(60):
                if time.monotonic() > deadline:
                    break
                keys = rng.integers(
                    0, 2**32, size=int(rng.integers(64, 2048)),
                    dtype=np.uint64,
                ).astype(np.uint32)
                ticket = service.submit(
                    PartitionRequest(relation=keys, config=CONFIGS[0])
                )
                response = ticket.result(timeout=RESULT_TIMEOUT_S)
                assert response.status in (
                    RequestStatus.OK, RequestStatus.REJECTED,
                )
        except Exception as exc:  # noqa: BLE001
            errors.append(("writer", writer_id, repr(exc)))

    def reader(reader_id, service):
        try:
            while not stop.is_set():
                snap = service.snapshot()
                counters = snap["counters"]
                # a torn read would let completed outrun admitted
                assert counters["completed"] <= counters["admitted"]
                assert (
                    counters["admitted"] + counters["rejected"]
                    <= counters["submitted"]
                )
                text = prometheus_from_snapshot(snap)
                assert "repro_service_submitted_total" in text
                samples.append(counters["submitted"])
        except Exception as exc:  # noqa: BLE001
            errors.append(("reader", reader_id, repr(exc)))

    with PartitionService(max_queue_requests=256) as service:
        readers = [
            threading.Thread(target=reader, args=(i, service))
            for i in range(reader_threads)
        ]
        writers = [
            threading.Thread(target=writer, args=(i, service))
            for i in range(writer_threads)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=RESULT_TIMEOUT_S * 2)
            assert not thread.is_alive(), "writer hung"
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
            assert not thread.is_alive(), "reader hung"
        final = service.snapshot()["counters"]

    assert not errors, errors
    assert samples, "readers never sampled a snapshot"
    assert final["submitted"] == max(samples)
    # submitted never decreases across samples *per reader*; the global
    # list interleaves readers, so check the weaker global invariant
    assert final["submitted"] >= samples[0]


def test_drain_under_concurrent_load():
    """``drain()`` while writers are mid-flight: every ticket issued
    before the drain resolves, and late submits fail with
    :class:`ServiceDrainingError` — never a hang or a lost ticket."""
    from repro.service import ServiceDrainingError

    errors = []
    resolved = []
    drained = threading.Event()

    def writer(writer_id, service):
        rng = np.random.default_rng(3000 + writer_id)
        try:
            while not drained.is_set():
                keys = rng.integers(
                    0, 2**32, size=256, dtype=np.uint64
                ).astype(np.uint32)
                try:
                    ticket = service.submit(
                        PartitionRequest(relation=keys, config=CONFIGS[0])
                    )
                except ServiceDrainingError:
                    return  # the documented refusal
                response = ticket.result(timeout=RESULT_TIMEOUT_S)
                resolved.append(response.status)
        except Exception as exc:  # noqa: BLE001
            errors.append((writer_id, repr(exc)))

    service = PartitionService(max_queue_requests=256)
    service.start()
    threads = [
        threading.Thread(target=writer, args=(i, service))
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.3)  # let the writers build up in-flight work
    service.drain()
    drained.set()
    for thread in threads:
        thread.join(timeout=RESULT_TIMEOUT_S)
        assert not thread.is_alive(), "writer hung across drain()"
    assert not errors, errors
    assert resolved, "no request resolved before the drain"
    assert all(
        status in (RequestStatus.OK, RequestStatus.REJECTED)
        for status in resolved
    )
    with pytest.raises(ServiceDrainingError):
        service.submit(
            PartitionRequest(
                relation=np.arange(64, dtype=np.uint32), config=CONFIGS[0]
            )
        )
