"""Concurrency stress test for the partition service (satellite 3).

Eight client threads hammer one :class:`PartitionService` with mixed
priorities, sizes and configs through a deliberately small admission
queue, so every control path fires: coalesced batches, splits,
rejections with backpressure, and (thread-local) retries after
rejection.  The invariants checked are the service's contract:

* every admitted request resolves — completed or timed out, never lost;
* every completed result is byte-identical to a direct
  :class:`~repro.core.partitioner.FpgaPartitioner` call;
* every rejected request carries a positive ``retry_after`` hint.

The workload is sized to finish comfortably inside CI budgets (a few
seconds on one core) and is additionally *time-bounded*: clients stop
submitting once ``REPRO_STRESS_BUDGET_S`` (default 120 s) of wall
clock has elapsed, so a slow runner degrades to a smaller workload
instead of a blown CI budget; ``timeout`` guards make a hang fail fast
instead of wedging the suite.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.service import (
    PartitionRequest,
    PartitionService,
    Priority,
    RequestStatus,
)

CLIENT_THREADS = 8
REQUESTS_PER_CLIENT = 25
RESULT_TIMEOUT_S = 60.0
#: wall-clock cap on the submission phase (CI sets this explicitly)
STRESS_BUDGET_S = float(os.environ.get("REPRO_STRESS_BUDGET_S", "120"))

CONFIGS = (
    PartitionerConfig(num_partitions=32),
    PartitionerConfig(num_partitions=64),
)
PRIORITIES = (Priority.LOW, Priority.NORMAL, Priority.HIGH)


def _client(client_id, service, barrier, results, errors, deadline):
    """One client: submit a mixed workload, wait for every ticket."""
    rng = np.random.default_rng(1000 + client_id)
    try:
        barrier.wait(timeout=10)
        for i in range(REQUESTS_PER_CLIENT):
            if time.monotonic() > deadline:
                break  # budget exhausted: stop submitting, keep invariants
            size = int(rng.integers(128, 3000))
            keys = rng.integers(0, 2**32, size=size, dtype=np.uint64).astype(
                np.uint32
            )
            request = PartitionRequest(
                relation=keys,
                config=CONFIGS[(client_id + i) % len(CONFIGS)],
                priority=PRIORITIES[i % len(PRIORITIES)],
            )
            ticket = service.submit(request)
            response = ticket.result(timeout=RESULT_TIMEOUT_S)
            results.append((request, response))
            if response.status is RequestStatus.REJECTED:
                # honour the backpressure hint (capped to keep CI fast)
                threading.Event().wait(min(0.05, response.retry_after))
    except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
        errors.append((client_id, repr(exc)))


def test_stress_mixed_priority_clients():
    results = []
    errors = []
    barrier = threading.Barrier(CLIENT_THREADS)
    deadline = time.monotonic() + STRESS_BUDGET_S
    with PartitionService(
        max_queue_requests=32,  # small on purpose: force rejections
        max_batch_requests=16,
        linger_s=0.0005,
    ) as service:
        threads = [
            threading.Thread(
                target=_client,
                args=(i, service, barrier, results, errors, deadline),
                name=f"client-{i}",
            )
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=RESULT_TIMEOUT_S * 2)
            assert not thread.is_alive(), "client thread hung"
    assert not errors, errors

    # time-bounding may shrink the workload on a very slow runner, but
    # every *submitted* request must have resolved
    total = len(results)
    assert 0 < total <= CLIENT_THREADS * REQUESTS_PER_CLIENT

    by_status = {}
    for _, response in results:
        by_status.setdefault(response.status, []).append(response)
    completed = by_status.get(RequestStatus.OK, [])
    rejected = by_status.get(RequestStatus.REJECTED, [])
    timed_out = by_status.get(RequestStatus.TIMED_OUT, [])

    # nothing is lost or failed: admitted -> completed or timed out
    assert len(completed) + len(rejected) + len(timed_out) == total
    assert RequestStatus.FAILED not in by_status
    assert completed, "no request completed"

    # metrics agree with client-side observations
    counters = service.metrics.to_dict()["counters"]
    assert counters["submitted"] == total
    assert counters["admitted"] == len(completed) + len(timed_out)
    assert counters["rejected"] == len(rejected)
    assert counters["completed"] == len(completed)
    assert counters["timed_out"] == len(timed_out)

    # every rejection carries a usable backpressure hint
    for response in rejected:
        assert response.retry_after is not None and response.retry_after > 0

    # byte-identity against direct solo partitioner calls
    references = {cfg: FpgaPartitioner(cfg) for cfg in CONFIGS}
    for request, response in results:
        if response.status is not RequestStatus.OK:
            continue
        assert response.backend == "fpga" and not response.degraded
        direct = references[request.config].partition(request.relation)
        assert np.array_equal(response.output.counts, direct.counts)
        for a, b in zip(
            response.output.partition_keys, direct.partition_keys
        ):
            assert np.array_equal(a, b)
        for a, b in zip(
            response.output.partition_payloads, direct.partition_payloads
        ):
            assert np.array_equal(a, b)

    # with 8 concurrent clients the scheduler should actually coalesce
    assert service.metrics.mean_batch_size() > 1.0
