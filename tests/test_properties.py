"""Property-based tests of the library's core invariants.

These are the load-bearing guarantees the rest of the reproduction
stands on:

1. the cycle-level circuit and the functional partitioner agree on
   every partition's contents for arbitrary inputs and configs;
2. the CPU and FPGA partitioners produce identical partitions for the
   same partition-index function;
3. partitioning is a permutation — no tuple lost, invented or moved to
   a wrong partition;
4. cache-line pack/unpack round-trips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import PartitionerCircuit
from repro.core.hashing import partition_of
from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.core.partitioner import FpgaPartitioner
from repro.core.tuples import pack_cache_lines, unpack_cache_lines
from repro.cpu.swwc_buffers import swwc_partition

key_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=120
).map(lambda xs: np.array(xs, dtype=np.uint32))


@given(
    keys=key_arrays,
    num_partitions=st.sampled_from([2, 8, 16]),
    output_mode=st.sampled_from(list(OutputMode)),
    layout_mode=st.sampled_from(list(LayoutMode)),
    hash_kind=st.sampled_from(list(HashKind)),
)
@settings(max_examples=30, deadline=None)
def test_circuit_equals_functional(
    keys, num_partitions, output_mode, layout_mode, hash_kind
):
    config = PartitionerConfig(
        num_partitions=num_partitions,
        output_mode=output_mode,
        layout_mode=layout_mode,
        hash_kind=hash_kind,
        pad_tuples=len(keys) + 64,
    )
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    circuit = PartitionerCircuit(config)
    if layout_mode is LayoutMode.VRID:
        sim = circuit.run(keys, None)
    else:
        sim = circuit.run(keys, payloads)
    func = FpgaPartitioner(config).partition(keys, payloads)
    for p in range(num_partitions):
        assert sorted(map(int, sim.partitions_keys[p])) == sorted(
            map(int, func.partition_keys[p])
        )
        assert sorted(map(int, sim.partitions_payloads[p])) == sorted(
            map(int, func.partition_payloads[p])
        )
    assert np.array_equal(sim.lines_per_partition, func.lines_per_partition)


@given(
    keys=key_arrays,
    num_partitions=st.sampled_from([2, 16, 64]),
    use_hash=st.booleans(),
    threads=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=50, deadline=None)
def test_cpu_equals_fpga_partition_contents(
    keys, num_partitions, use_hash, threads
):
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    cpu_keys, _, cpu_counts, _ = swwc_partition(
        keys, payloads, num_partitions, use_hash=use_hash, threads=threads
    )
    config = PartitionerConfig(
        num_partitions=num_partitions,
        output_mode=OutputMode.HIST,
        hash_kind=HashKind.MURMUR if use_hash else HashKind.RADIX,
    )
    fpga = FpgaPartitioner(config).partition(keys, payloads)
    assert np.array_equal(cpu_counts, fpga.counts)
    for p in range(num_partitions):
        assert sorted(map(int, cpu_keys[p])) == sorted(
            map(int, fpga.partition_keys[p])
        )


@given(keys=key_arrays, num_partitions=st.sampled_from([4, 32]))
@settings(max_examples=50, deadline=None)
def test_partitioning_is_a_permutation(keys, num_partitions):
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    config = PartitionerConfig(
        num_partitions=num_partitions, output_mode=OutputMode.HIST
    )
    out = FpgaPartitioner(config).partition(keys, payloads)
    # every tuple appears exactly once, in the right partition
    seen = np.concatenate(out.partition_payloads)
    assert sorted(map(int, seen)) == list(range(keys.shape[0]))
    for p in range(num_partitions):
        p_keys = out.partition_keys[p]
        if p_keys.size:
            assert np.all(
                np.asarray(partition_of(p_keys, num_partitions, True)) == p
            )


@given(
    keys=key_arrays,
    tuples_per_line=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(keys, tuples_per_line):
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    lines = list(pack_cache_lines(keys, payloads, tuples_per_line))
    got_keys, got_payloads = unpack_cache_lines(lines)
    assert np.array_equal(got_keys, keys)
    assert np.array_equal(got_payloads, payloads)
    expected_lines = -(-keys.shape[0] // tuples_per_line)
    assert len(lines) == expected_lines


@given(keys=key_arrays)
@settings(max_examples=30, deadline=None)
def test_pad_either_succeeds_completely_or_aborts(keys):
    """PAD mode is all-or-nothing: either every tuple lands (within the
    preassigned regions) or the run aborts with the overflow error —
    never a silent partial result.  And the HIST fallback always
    completes."""
    from repro.errors import PartitionOverflowError

    config = PartitionerConfig(num_partitions=4, output_mode=OutputMode.PAD)
    payloads = np.arange(keys.shape[0], dtype=np.uint32)
    try:
        out = FpgaPartitioner(config).partition(keys, payloads)
    except PartitionOverflowError:
        retried = FpgaPartitioner(config).partition(
            keys, payloads, on_overflow="hist"
        )
        assert retried.num_tuples == keys.shape[0]
    else:
        assert out.num_tuples == keys.shape[0]
        capacity = config.partition_capacity(keys.shape[0])
        per_line = config.tuples_per_line
        assert int(out.lines_per_partition.max()) * per_line <= capacity
