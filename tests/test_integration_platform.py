"""Platform integration tests: the Section 2.1 start-up and data flow.

These run the whole substrate together the way the real system does:
allocate shared 4 MB pages, hand the physical addresses to the FPGA
page table, move real bytes through the QPI end-point at physical
addresses, and observe the coherence consequences on the CPU side.
"""

import numpy as np
import pytest

from repro.constants import CACHE_LINE_BYTES, PAGE_BYTES
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.platform.coherence import Socket
from repro.platform.machine import XeonFpgaPlatform


@pytest.fixture
def platform():
    return XeonFpgaPlatform(memory_bytes=64 * PAGE_BYTES)


class TestStartupFlow:
    def test_allocate_populates_page_table(self, platform):
        region = platform.allocate_shared("input", 2 * PAGE_BYTES)
        assert platform.page_table.mapped_bytes >= region.size_bytes
        # FPGA-side and CPU-side translation agree
        for offset in (0, 4096, PAGE_BYTES + 17):
            assert platform.page_table.translate(
                region.virtual_base + offset
            ) == region.physical_address(offset)

    def test_multiple_regions_contiguous_virtual_space(self, platform):
        a = platform.allocate_shared("a", PAGE_BYTES)
        b = platform.allocate_shared("b", PAGE_BYTES)
        assert b.virtual_base == a.virtual_end
        assert platform.page_table.translate(
            b.virtual_base
        ) == b.physical_address(0)


class TestDataPlane:
    def test_fpga_writes_cpu_reads(self, platform, rng):
        """The AFU writes a cache line through page table + QPI; the
        CPU software reads the same bytes through its own translation."""
        region = platform.allocate_shared("shared", PAGE_BYTES)
        line = rng.integers(0, 256, CACHE_LINE_BYTES, dtype=np.uint8)
        virtual = region.virtual_base + 42 * CACHE_LINE_BYTES
        physical = platform.page_table.translate(virtual)
        platform.qpi.write_line(physical, line)
        got = region.read_bytes(42 * CACHE_LINE_BYTES, CACHE_LINE_BYTES)
        assert np.array_equal(got, line)
        assert platform.qpi.bytes_written == CACHE_LINE_BYTES

    def test_cpu_writes_fpga_reads(self, platform, rng):
        region = platform.allocate_shared("shared", PAGE_BYTES)
        data = rng.integers(0, 256, CACHE_LINE_BYTES, dtype=np.uint8)
        region.write_bytes(0, data)
        physical = platform.page_table.translate(region.virtual_base)
        assert np.array_equal(platform.qpi.read_line(physical), data)


class TestEndToEndPartitioningOnPlatform:
    def test_partition_write_back_and_cpu_readback(self, platform, rng):
        """Full flow: partition a small relation, materialise the
        partitions into a shared region via the cycle circuit's memory
        image, read them back from the CPU side and verify contents."""
        n = 512
        keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
            np.uint32
        )
        payloads = np.arange(n, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=8, output_mode=OutputMode.HIST
        )
        partitioner = FpgaPartitioner(config, platform=platform)
        sim = partitioner.simulate(keys, payloads, qpi_bandwidth_gbs=None)

        region = platform.allocate_shared(
            "partitions", (max(sim.memory_image) + 1) * CACHE_LINE_BYTES
        )
        for address, line in sim.memory_image.items():
            raw = np.empty(CACHE_LINE_BYTES, dtype=np.uint8)
            raw[:32] = np.frombuffer(line.keys.tobytes(), dtype=np.uint8)
            raw[32:] = np.frombuffer(line.payloads.tobytes(), dtype=np.uint8)
            physical = platform.page_table.translate(
                region.virtual_base + address * CACHE_LINE_BYTES
            )
            platform.qpi.write_line(physical, raw)
        platform.coherence.record_region_write("partitions", Socket.FPGA)

        # CPU-side readback of partition 3
        base = int(sim.base_lines[3])
        lines = int(sim.lines_per_partition[3])
        got_keys = []
        for i in range(lines):
            raw = region.read_bytes(
                (base + i) * CACHE_LINE_BYTES, CACHE_LINE_BYTES
            )
            line_keys = np.frombuffer(raw[:32].tobytes(), dtype=np.uint32)
            line_payloads = np.frombuffer(raw[32:].tobytes(), dtype=np.uint32)
            valid = line_payloads != np.uint32(0xFFFFFFFF)
            got_keys.extend(map(int, line_keys[valid]))
        assert sorted(got_keys) == sorted(map(int, sim.partitions_keys[3]))

        # and the CPU now pays the snoop penalty on random access
        assert platform.coherence.cpu_read_penalty(
            "partitions", random_access=True
        ) > 2.0

    def test_simulate_uses_platform_bandwidth(self, platform, rng):
        keys = rng.integers(0, 2**32, size=256, dtype=np.uint64).astype(
            np.uint32
        )
        config = PartitionerConfig(num_partitions=8, output_mode=OutputMode.PAD,
                                   pad_tuples=256)
        partitioner = FpgaPartitioner(config, platform=platform)
        sim = partitioner.simulate(keys, np.arange(256, dtype=np.uint32))
        # platform B(r=1) ~6.97 GB/s < 12.8 -> back-pressure must appear
        assert sim.stats.input_backpressure_cycles > 0


class TestHypotheticalPlatforms:
    def test_raw_wrapper_removes_backpressure(self, rng):
        keys = rng.integers(0, 2**32, size=256, dtype=np.uint64).astype(
            np.uint32
        )
        platform = XeonFpgaPlatform.raw_wrapper()
        config = PartitionerConfig(
            num_partitions=8, output_mode=OutputMode.PAD, pad_tuples=256
        )
        partitioner = FpgaPartitioner(config, platform=platform)
        sim = partitioner.simulate(keys, np.arange(256, dtype=np.uint32))
        # 25.6 GB/s = 2 lines/cycle >= the circuit's 1 line/cycle
        assert sim.stats.input_backpressure_cycles == 0
