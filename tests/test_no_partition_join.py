"""Tests for the non-partitioned hash join baseline."""

import pytest

from repro.join.no_partition_join import (
    NoPartitionCostModel,
    RANDOM_LINES_PER_SECOND_PER_THREAD,
    no_partition_join,
)
from repro.join.radix_join import cpu_radix_join
from repro.errors import ConfigurationError
from repro.workloads.relations import make_workload

PAPER_N = 128 * 10**6


class TestFunctional:
    def test_same_matches_as_radix_join(self):
        wl = make_workload("A", scale=200000)
        npo = no_partition_join(wl, threads=4)
        radix = cpu_radix_join(wl, num_partitions=64, threads=4)
        assert npo.matches == radix.matches

    def test_payload_collection(self):
        wl = make_workload("C", scale=200000)
        result = no_partition_join(wl, threads=1, collect_payloads=True)
        assert result.r_payloads.shape[0] == result.matches


class TestCostModel:
    def test_random_rate_comes_from_table1(self):
        # 512 MB / 64 B / 1.1537 s
        assert RANDOM_LINES_PER_SECOND_PER_THREAD == pytest.approx(
            7.27e6, rel=0.01
        )

    def test_small_table_in_cache(self):
        model = NoPartitionCostModel()
        estimate = model.estimate(100_000, 1_000_000, threads=1)
        assert estimate.in_cache
        assert estimate.total_seconds < 0.01

    def test_large_table_pays_random_access(self):
        model = NoPartitionCostModel()
        estimate = model.estimate(PAPER_N, PAPER_N, threads=10)
        assert not estimate.in_cache
        # dependent random accesses: ~128e6 / 72.7e6 per side
        assert estimate.total_seconds > 3.0

    def test_thread_scaling(self):
        model = NoPartitionCostModel()
        one = model.estimate(PAPER_N, PAPER_N, threads=1)
        ten = model.estimate(PAPER_N, PAPER_N, threads=10)
        assert ten.total_seconds == pytest.approx(
            one.total_seconds / 10, rel=0.01
        )

    def test_invalid_threads(self):
        with pytest.raises(ConfigurationError):
            NoPartitionCostModel().estimate(10, 10, threads=0)


class TestSchuhFinding:
    def test_partitioned_wins_for_large_relations(self):
        """[31]'s conclusion, the premise of the whole paper: on large
        non-skewed relations the radix join beats the NPO join."""
        wl = make_workload("A", scale=200000)
        radix = cpu_radix_join(
            wl, 8192, threads=10,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        npo = no_partition_join(
            wl, threads=10,
            timing_r_tuples=PAPER_N, timing_s_tuples=PAPER_N,
        )
        assert radix.timing.total_seconds < npo.timing.total_seconds
        assert radix.throughput_mtuples > 2 * npo.throughput_mtuples

    def test_npo_wins_for_tiny_build_side(self):
        """...and the flip side: when R's table fits in cache, skipping
        the partitioning pass wins."""
        wl = make_workload("B", scale=200000)
        tiny_r = 1_000_000  # 16 MB table < 25 MB L3
        big_s = 256 * 10**6
        radix = cpu_radix_join(
            wl, 8192, threads=10,
            timing_r_tuples=tiny_r, timing_s_tuples=big_s,
        )
        npo = no_partition_join(
            wl, threads=10,
            timing_r_tuples=tiny_r, timing_s_tuples=big_s,
        )
        assert npo.timing.total_seconds < radix.timing.total_seconds
