"""Determinism tests: identical inputs must give identical outputs.

Reproducibility is the point of a reproduction; every stochastic
component is seeded and every pipeline is deterministic, so repeated
runs must agree bit for bit.
"""

import numpy as np

from repro.core.circuit import PartitionerCircuit
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.cpu.swwc_buffers import swwc_partition
from repro.join.radix_join import cpu_radix_join
from repro.ops import RangePartitioner, partitioned_groupby
from repro.workloads.distributions import random_keys, zipf_keys
from repro.workloads.relations import make_workload


class TestGenerators:
    def test_random_keys_reproducible(self):
        assert np.array_equal(
            random_keys(1000, seed=42), random_keys(1000, seed=42)
        )

    def test_zipf_reproducible(self):
        assert np.array_equal(
            zipf_keys(1000, 1.0, seed=3), zipf_keys(1000, 1.0, seed=3)
        )

    def test_workloads_reproducible(self):
        a = make_workload("C", scale=100000, seed=5)
        b = make_workload("C", scale=100000, seed=5)
        assert np.array_equal(a.r.keys, b.r.keys)
        assert np.array_equal(a.s.keys, b.s.keys)


class TestPartitioners:
    def test_functional_partitioner_bitwise_stable(self, small_keys, small_payloads):
        config = PartitionerConfig(num_partitions=32, output_mode=OutputMode.HIST)
        a = FpgaPartitioner(config).partition(small_keys, small_payloads)
        b = FpgaPartitioner(config).partition(small_keys, small_payloads)
        for p in range(32):
            assert np.array_equal(a.partition_keys[p], b.partition_keys[p])
            assert np.array_equal(
                a.partition_payloads[p], b.partition_payloads[p]
            )

    def test_circuit_bitwise_stable(self, small_keys, small_payloads):
        config = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=512
        )
        a = PartitionerCircuit(config).run(small_keys, small_payloads)
        b = PartitionerCircuit(config).run(small_keys, small_payloads)
        assert a.stats.cycles == b.stats.cycles
        for p in range(16):
            assert np.array_equal(a.partitions_keys[p], b.partitions_keys[p])

    def test_swwc_stable_across_runs(self, small_keys, small_payloads):
        a = swwc_partition(small_keys, small_payloads, 16, threads=4)
        b = swwc_partition(small_keys, small_payloads, 16, threads=4)
        for pa, pb in zip(a[0], b[0]):
            assert np.array_equal(pa, pb)

    def test_range_partitioner_stable(self):
        keys = random_keys(5000, seed=9)
        a = RangePartitioner(16, seed=1).partition(keys)
        b = RangePartitioner(16, seed=1).partition(keys)
        assert np.array_equal(a.splitters, b.splitters)


class TestPipelines:
    def test_join_matches_stable(self):
        wl = make_workload("C", scale=200000, seed=2)
        a = cpu_radix_join(wl, 64, threads=3)
        b = cpu_radix_join(wl, 64, threads=3)
        assert a.matches == b.matches
        assert a.timing.total_seconds == b.timing.total_seconds

    def test_groupby_stable(self):
        keys = random_keys(2000, seed=4) % np.uint32(64)
        values = np.ones(2000, dtype=np.uint32)
        a = partitioned_groupby(keys.astype(np.uint32), values)
        b = partitioned_groupby(keys.astype(np.uint32), values)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.values, b.values)
