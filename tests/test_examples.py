"""Smoke tests: every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"
