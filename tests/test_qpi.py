"""Tests for the QPI link and end-point models."""

import numpy as np
import pytest

from repro.constants import CACHE_LINE_BYTES, PAGE_BYTES
from repro.errors import ConfigurationError, MemoryError_
from repro.platform.memory import SharedMemory
from repro.platform.qpi import QpiEndpoint, QpiLinkModel


class TestLinkModel:
    def test_lines_per_cycle(self):
        # 6.5 GB/s at 200 MHz and 64 B lines ~= 0.5078 lines/cycle
        link = QpiLinkModel(bandwidth_gbs=6.5)
        assert link.lines_per_cycle == pytest.approx(0.5078, abs=0.001)

    def test_throttles_to_budget(self):
        link = QpiLinkModel(bandwidth_gbs=6.5)
        granted = 0
        cycles = 1000
        for _ in range(cycles):
            link.tick()
            if link.try_write():
                granted += 1
        assert granted == pytest.approx(cycles * link.lines_per_cycle, rel=0.02)

    def test_reads_and_writes_share_tokens(self):
        link = QpiLinkModel(bandwidth_gbs=12.8)  # exactly 1 line/cycle
        link.tick()
        assert link.try_read()
        assert not link.try_write()  # budget spent this cycle

    def test_burst_cap(self):
        link = QpiLinkModel(bandwidth_gbs=6.5, burst_lines=4)
        for _ in range(100):
            link.tick()  # idle accrual capped
        granted = 0
        while link.try_write():
            granted += 1
        assert granted <= 4

    def test_counters(self):
        link = QpiLinkModel(bandwidth_gbs=25.6)
        link.tick()
        link.try_read()
        link.try_write()
        assert link.lines_read == 1
        assert link.lines_written == 1

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            QpiLinkModel(bandwidth_gbs=0)


class TestEndpoint:
    @pytest.fixture
    def endpoint(self):
        return QpiEndpoint(SharedMemory(total_bytes=4 * PAGE_BYTES))

    def test_line_roundtrip(self, endpoint, rng):
        data = rng.integers(0, 256, CACHE_LINE_BYTES, dtype=np.uint8)
        endpoint.write_line(128, data)
        assert np.array_equal(endpoint.read_line(128), data)

    def test_alignment_enforced(self, endpoint):
        with pytest.raises(MemoryError_):
            endpoint.read_line(100)
        with pytest.raises(MemoryError_):
            endpoint.write_line(7, np.zeros(64, dtype=np.uint8))

    def test_whole_lines_only(self, endpoint):
        with pytest.raises(MemoryError_):
            endpoint.write_line(0, np.zeros(32, dtype=np.uint8))

    def test_byte_accounting(self, endpoint):
        endpoint.write_line(0, np.zeros(64, dtype=np.uint8))
        endpoint.read_line(0)
        endpoint.read_line(64)
        assert endpoint.bytes_written == 64
        assert endpoint.bytes_read == 128
        assert endpoint.total_bytes == 192
        endpoint.reset_counters()
        assert endpoint.total_bytes == 0
