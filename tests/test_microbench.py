"""Tests for the mechanistic Table 1 simulation (Section 2.2)."""

import pytest

from repro.constants import CPU_L3_BYTES, FPGA_CACHE_BYTES, TABLE1_SECONDS
from repro.errors import ConfigurationError
from repro.platform.coherence import Socket
from repro.platform.microbench import MemoryMicrobench, MicrobenchResult


@pytest.fixture(scope="module")
def table1_sim():
    return MemoryMicrobench(simulate_lines=1 << 14).table1()


class TestCalibratedCells:
    def test_cpu_rows_match_exactly(self, table1_sim):
        """The CPU-writer rows calibrate the base latencies."""
        assert table1_sim[("cpu", "sequential")].seconds == pytest.approx(
            TABLE1_SECONDS[("cpu", "sequential")], rel=0.001
        )
        assert table1_sim[("cpu", "random")].seconds == pytest.approx(
            TABLE1_SECONDS[("cpu", "random")], rel=0.001
        )


class TestPredictedCells:
    def test_fpga_random_row_predicted(self, table1_sim):
        """The headline: the snoop mechanism *predicts* the 2.49 s
        random-read cell from the round-trip latency and the 128 KB
        cache, within a few percent."""
        assert table1_sim[("fpga", "random")].seconds == pytest.approx(
            TABLE1_SECONDS[("fpga", "random")], rel=0.05
        )

    def test_fpga_sequential_row_predicted(self, table1_sim):
        """...and the asymmetry: prefetching hides the snoops on the
        sequential stream, leaving only the mild 1.1x penalty."""
        assert table1_sim[("fpga", "sequential")].seconds == pytest.approx(
            TABLE1_SECONDS[("fpga", "sequential")], rel=0.05
        )

    def test_snoops_mostly_miss_the_tiny_fpga_cache(self, table1_sim):
        """'any cache-line that is snooped on the FPGA socket is most
        likely not found'."""
        result = table1_sim[("fpga", "random")]
        assert result.snoops > 0
        assert result.snoop_hit_rate < 0.1

    def test_no_snoops_for_cpu_homed_memory(self, table1_sim):
        assert table1_sim[("cpu", "random")].snoops == 0


class TestHomogeneousCounterfactual:
    """Section 2.2: 'In a homogeneous 2-socket machine with 2 CPUs,
    this is not an issue because both sockets would have the same
    amount of L3 cache' — a snoop to a 25 MB L3 usually finds the line
    a working set of that size, where the 128 KB FPGA cache cannot."""

    REGION = 16 * 1024 * 1024  # fits the remote L3, dwarfs the FPGA cache

    def run(self, remote_cache_bytes, ways):
        bench = MemoryMicrobench(
            region_bytes=self.REGION,
            simulate_lines=self.REGION // 64,
            remote_cache_bytes=remote_cache_bytes,
            remote_cache_ways=ways,
        )
        return bench.run(Socket.FPGA, random_access=True)

    def test_big_remote_cache_absorbs_snoops(self):
        remote_l3 = self.run(CPU_L3_BYTES, 16)
        fpga_cache = self.run(FPGA_CACHE_BYTES, 2)
        assert remote_l3.snoop_hit_rate > 0.95
        assert fpga_cache.snoop_hit_rate < 0.05
        assert remote_l3.seconds < 0.6 * fpga_cache.seconds


class TestScaling:
    def test_sample_size_invariance(self):
        """Per-line behaviour is scale-free: a 4x larger sample gives
        the same extrapolated seconds."""
        small = MemoryMicrobench(simulate_lines=1 << 12).run(
            Socket.FPGA, random_access=True
        )
        large = MemoryMicrobench(simulate_lines=1 << 14).run(
            Socket.FPGA, random_access=True
        )
        assert small.seconds == pytest.approx(large.seconds, rel=0.02)

    def test_result_fields(self):
        result = MemoryMicrobench(simulate_lines=1 << 10).run(
            Socket.CPU, random_access=False
        )
        assert isinstance(result, MicrobenchResult)
        assert result.lines_read == 512 * 1024 * 1024 // 64

    def test_unaligned_region_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryMicrobench(region_bytes=1000)
