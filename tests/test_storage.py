"""Out-of-core storage engine: store, spill, crash recovery, service.

The load-bearing guarantee is **byte identity**: partitioning a stored
relation chunk-by-chunk through the spill path must produce exactly the
partitions, counts, line layout and traffic accounting of one in-memory
``partition()`` call — under any chunking, any memory budget, any mode,
and across a crash + :meth:`SpillPartitioner.resume`.
"""

from __future__ import annotations

import json
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.core.partitioner import FpgaPartitioner, PartitionedOutput
from repro.cpu.partitioner import CpuPartitioner
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.obs.tracing import Tracer
from repro.service.degradation import BackendFault, FaultInjector
from repro.storage import (
    PartitionSpill,
    RelationStore,
    SpillPartitioner,
    StorageError,
    config_from_dict,
    config_to_dict,
)


def random_keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(np.uint32)


def assert_byte_identical(spill: PartitionSpill, mem: PartitionedOutput):
    out = spill.to_output()
    assert np.array_equal(out.counts, mem.counts)
    assert np.array_equal(out.lines_per_partition, mem.lines_per_partition)
    assert np.array_equal(out.base_lines, mem.base_lines)
    assert out.bytes_read == mem.bytes_read
    assert out.bytes_written == mem.bytes_written
    assert out.dummy_slots == mem.dummy_slots
    for p in range(mem.num_partitions):
        for side in (0, 1):
            assert np.array_equal(
                np.asarray(spill.partition(p)[side]),
                np.asarray(mem.partition(p)[side]),
            ), f"partition {p} column {side}"


# ---------------------------------------------------------------------------
# RelationStore
# ---------------------------------------------------------------------------


class TestRelationStore:
    def test_ingest_roundtrip(self, tmp_path):
        keys = random_keys(10_000, seed=1)
        store = RelationStore.ingest(
            keys, tmp_path / "s", chunk_tuples=3_000
        ).seal()
        assert store.num_chunks == 4
        assert store.num_tuples == 10_000
        reopened = RelationStore.open(tmp_path / "s")
        reopened.verify()
        got_keys = np.concatenate(
            [reopened.chunk(i)[0] for i in range(reopened.num_chunks)]
        )
        got_pays = np.concatenate(
            [reopened.chunk(i)[1] for i in range(reopened.num_chunks)]
        )
        assert np.array_equal(got_keys, keys)
        # default payloads are *global* positions (the VRID column)
        assert np.array_equal(got_pays, np.arange(10_000, dtype=np.uint32))

    def test_chunk_offsets_and_iteration(self, tmp_path):
        keys = random_keys(700, seed=2)
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=300)
        offsets = [off for _, off, _, _ in store.iter_chunks()]
        assert offsets == [0, 300, 600]
        assert store.chunk_offset(2) == 600

    def test_create_refuses_existing(self, tmp_path):
        RelationStore.create(tmp_path / "s")
        with pytest.raises(StorageError):
            RelationStore.create(tmp_path / "s")

    def test_open_drops_unreferenced_partial_chunk(self, tmp_path):
        store = RelationStore.create(tmp_path / "s", chunk_tuples=100)
        store.append_chunk(random_keys(100, seed=3))
        # a killed ingest leaves a chunk file the manifest never named
        stray = tmp_path / "s" / "chunk-000001.bin"
        stray.write_bytes(b"torn")
        reopened = RelationStore.open(tmp_path / "s")
        assert reopened.num_chunks == 1
        assert not stray.exists()
        reopened.verify()

    def test_verify_catches_corruption(self, tmp_path):
        store = RelationStore.ingest(
            random_keys(500, seed=4), tmp_path / "s", chunk_tuples=250
        )
        target = tmp_path / "s" / store.chunks[1].file
        raw = bytearray(target.read_bytes())
        raw[17] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="CRC-32"):
            RelationStore.open(tmp_path / "s").verify()

    def test_read_only_after_open(self, tmp_path):
        RelationStore.ingest(random_keys(10, seed=5), tmp_path / "s")
        reopened = RelationStore.open(tmp_path / "s")
        with pytest.raises(StorageError, match="read-only"):
            reopened.append_chunk(random_keys(10))

    def test_empty_chunk_rejected(self, tmp_path):
        store = RelationStore.create(tmp_path / "s")
        with pytest.raises(ConfigurationError):
            store.append_chunk(np.empty(0, dtype=np.uint32))

    def test_ingest_sketch_recorded(self, tmp_path):
        keys = np.arange(5_000, dtype=np.uint32)
        RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=1_000)
        reopened = RelationStore.open(tmp_path / "s")
        assert reopened.sketch is not None
        estimate = reopened.sketch.cardinality()
        assert abs(estimate - 5_000) / 5_000 < 0.15


# ---------------------------------------------------------------------------
# SpillPartitioner: byte identity
# ---------------------------------------------------------------------------


MODES = [
    (OutputMode.HIST, LayoutMode.RID),
    (OutputMode.HIST, LayoutMode.VRID),
    (OutputMode.PAD, LayoutMode.RID),
]


class TestSpillByteIdentity:
    @pytest.mark.parametrize("output_mode,layout_mode", MODES)
    def test_identical_to_in_memory(self, tmp_path, output_mode, layout_mode):
        keys = random_keys(30_000, seed=7)
        cfg = PartitionerConfig(
            num_partitions=32,
            output_mode=output_mode,
            layout_mode=layout_mode,
        )
        mem = FpgaPartitioner(cfg).partition(keys)
        store = RelationStore.ingest(
            keys, tmp_path / "s", chunk_tuples=4_321
        ).seal()
        spill = SpillPartitioner(cfg, max_bytes_in_memory=64_000).run(
            store, tmp_path / "run"
        )
        assert_byte_identical(spill, mem)
        spill.verify()

    def test_cpu_backend_matches_cpu_in_memory(self, tmp_path):
        keys = random_keys(12_000, seed=8)
        cfg = PartitionerConfig(num_partitions=16)
        mem = CpuPartitioner.matching(cfg, threads=1).partition(
            keys, np.arange(12_000, dtype=np.uint32)
        )
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=2_500)
        spill = SpillPartitioner(
            cfg, backend="cpu", max_bytes_in_memory=30_000
        ).run(store, tmp_path / "run")
        for p in range(16):
            assert np.array_equal(
                np.asarray(spill.partition(p)[0]),
                np.asarray(mem.partition(p)[0]),
            )

    def test_tiny_budget_forces_flush_per_chunk(self, tmp_path):
        keys = random_keys(5_000, seed=9)
        cfg = PartitionerConfig(num_partitions=8)
        mem = FpgaPartitioner(cfg).partition(keys)
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=500)
        tracer = Tracer()
        spill = SpillPartitioner(
            cfg, max_bytes_in_memory=1, tracer=tracer
        ).run(store, tmp_path / "run")
        assert_byte_identical(spill, mem)
        flushes = [s for s in tracer.export() if s.name == "spill_flush"]
        assert len(flushes) == store.num_chunks

    def test_spill_spans_emitted_with_bytes(self, tmp_path):
        keys = random_keys(3_000, seed=10)
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=1_000)
        tracer = Tracer()
        SpillPartitioner(
            PartitionerConfig(num_partitions=8),
            max_bytes_in_memory=10_000,
            tracer=tracer,
        ).run(store, tmp_path / "run")
        spans = tracer.export()
        names = {s.name for s in spans}
        assert {"spill", "spill_chunk", "spill_flush", "spill_merge"} <= names
        chunk_bytes = sum(
            s.attributes["bytes"] for s in spans if s.name == "spill_chunk"
        )
        assert chunk_bytes == 3_000 * 8

    @given(
        n=st.integers(min_value=50, max_value=4_000),
        chunk_tuples=st.integers(min_value=13, max_value=1_500),
        partition_bits=st.sampled_from([1, 3, 4, 6]),
        budget=st.sampled_from([1, 10_000, 1 << 30]),
        hash_kind=st.sampled_from(list(HashKind)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_streamed_equals_in_memory(
        self, tmp_path_factory, n, chunk_tuples, partition_bits, budget,
        hash_kind, seed,
    ):
        tmp_path = tmp_path_factory.mktemp("prop")
        keys = random_keys(n, seed=seed)
        cfg = PartitionerConfig(
            num_partitions=1 << partition_bits, hash_kind=hash_kind
        )
        mem = FpgaPartitioner(cfg).partition(keys)
        store = RelationStore.ingest(
            keys, tmp_path / "s", chunk_tuples=chunk_tuples
        )
        spill = SpillPartitioner(cfg, max_bytes_in_memory=budget).run(
            store, tmp_path / "run"
        )
        assert_byte_identical(spill, mem)


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def _setup(self, tmp_path, n=20_000, chunk_tuples=2_000):
        keys = random_keys(n, seed=21)
        cfg = PartitionerConfig(num_partitions=16)
        store = RelationStore.ingest(
            keys, tmp_path / "s", chunk_tuples=chunk_tuples
        ).seal()
        mem = FpgaPartitioner(cfg).partition(keys)
        return keys, cfg, store, mem

    @pytest.mark.parametrize("kill_at", [1, 2, 5, 9])
    def test_kill_and_resume_byte_identical(self, tmp_path, kill_at):
        _, cfg, store, mem = self._setup(tmp_path)
        injector = FaultInjector()
        injector.fail_at(kill_at)
        spiller = SpillPartitioner(
            cfg, max_bytes_in_memory=50_000, fault_injector=injector
        )
        with pytest.raises(BackendFault):
            spiller.run(store, tmp_path / "run")
        # mid-run state is visibly incomplete and refuses to open
        with pytest.raises(StorageError, match="running"):
            PartitionSpill.open(tmp_path / "run")
        tracer = Tracer()
        spill = SpillPartitioner(
            cfg, max_bytes_in_memory=50_000, tracer=tracer
        ).resume(tmp_path / "run")
        assert_byte_identical(spill, mem)
        spill.verify()
        assert "resume" in {s.name for s in tracer.export()}

    def test_kill_in_torn_write_window(self, tmp_path):
        """A crash *between* run-file append and manifest commit leaves
        bytes past the checkpoint; resume must truncate them away."""
        _, cfg, store, mem = self._setup(tmp_path)
        injector = FaultInjector()
        # checkpoints: chunk checks interleave with commit checks; the
        # commit check sits exactly in the torn window (after
        # append_buffers, before commit)
        injector.fail_at(4)
        with pytest.raises(BackendFault):
            SpillPartitioner(
                cfg, max_bytes_in_memory=1, fault_injector=injector
            ).run(store, tmp_path / "run")
        spill = SpillPartitioner(cfg, max_bytes_in_memory=1).resume(
            tmp_path / "run"
        )
        assert_byte_identical(spill, mem)

    def test_double_kill_then_resume(self, tmp_path):
        _, cfg, store, mem = self._setup(tmp_path)
        first = FaultInjector()
        first.fail_at(3)
        with pytest.raises(BackendFault):
            SpillPartitioner(
                cfg, max_bytes_in_memory=40_000, fault_injector=first
            ).run(store, tmp_path / "run")
        second = FaultInjector()
        second.fail_at(2)
        with pytest.raises(BackendFault):
            SpillPartitioner(
                cfg, max_bytes_in_memory=40_000, fault_injector=second
            ).resume(tmp_path / "run")
        spill = SpillPartitioner(cfg, max_bytes_in_memory=40_000).resume(
            tmp_path / "run"
        )
        assert_byte_identical(spill, mem)

    def test_resume_of_complete_run_is_idempotent(self, tmp_path):
        _, cfg, store, mem = self._setup(tmp_path, n=4_000, chunk_tuples=900)
        spiller = SpillPartitioner(cfg, max_bytes_in_memory=10_000)
        spiller.run(store, tmp_path / "run")
        spill = spiller.resume(tmp_path / "run")
        assert_byte_identical(spill, mem)

    def test_resume_rejects_mismatched_config(self, tmp_path):
        _, cfg, store, _ = self._setup(tmp_path, n=4_000, chunk_tuples=900)
        injector = FaultInjector()
        injector.fail_at(2)
        with pytest.raises(BackendFault):
            SpillPartitioner(
                cfg, max_bytes_in_memory=1, fault_injector=injector
            ).run(store, tmp_path / "run")
        other = PartitionerConfig(num_partitions=64)
        with pytest.raises(ConfigurationError, match="different"):
            SpillPartitioner(other).resume(tmp_path / "run")

    def test_run_refuses_existing_run_dir(self, tmp_path):
        _, cfg, store, _ = self._setup(tmp_path, n=2_000, chunk_tuples=900)
        spiller = SpillPartitioner(cfg)
        spiller.run(store, tmp_path / "run")
        with pytest.raises(StorageError, match="resume"):
            spiller.run(store, tmp_path / "run")

    def test_spill_verify_catches_corruption(self, tmp_path):
        _, cfg, store, _ = self._setup(tmp_path, n=4_000, chunk_tuples=900)
        spill = SpillPartitioner(cfg).run(store, tmp_path / "run")
        victim = next(spill.partitions_dir.glob("partition-*.keys"))
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="CRC-32"):
            spill.verify()


class TestFaultInjectorFailAt:
    def test_fails_exactly_nth_call(self):
        injector = FaultInjector()
        injector.fail_at(3)
        injector.check()
        injector.check()
        with pytest.raises(BackendFault, match="fail_at"):
            injector.check()
        injector.check()  # disarmed after firing
        assert injector.injected == 1

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            FaultInjector().fail_at(0)


# ---------------------------------------------------------------------------
# PAD overflow on the spill path
# ---------------------------------------------------------------------------


class TestSpillOverflow:
    def _skewed(self, tmp_path):
        # one dominant key forces a PAD overflow at realistic padding
        keys = np.zeros(8_000, dtype=np.uint32)
        keys[:1_000] = random_keys(1_000, seed=31)
        cfg = PartitionerConfig(
            num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=64
        )
        store = RelationStore.ingest(
            keys, tmp_path / "s", chunk_tuples=1_000, sketch=False
        )
        return keys, cfg, store

    def test_overflow_raises_globally(self, tmp_path):
        keys, cfg, store = self._skewed(tmp_path)
        # every chunk fits its per-chunk capacity; only the *global*
        # merge-time check can see the overflow
        with pytest.raises(PartitionOverflowError):
            SpillPartitioner(cfg, max_bytes_in_memory=4_000).run(
                store, tmp_path / "run"
            )

    def test_overflow_hist_policy_matches_in_memory(self, tmp_path):
        keys, cfg, store = self._skewed(tmp_path)
        mem = FpgaPartitioner(cfg).partition(keys, on_overflow="hist")
        spill = SpillPartitioner(cfg, max_bytes_in_memory=4_000).run(
            store, tmp_path / "run", on_overflow="hist"
        )
        assert_byte_identical(spill, mem)
        assert spill.config.output_mode is OutputMode.HIST
        assert spill.requested_config.output_mode is OutputMode.PAD

    def test_cpu_policy_rejected(self, tmp_path):
        _, cfg, store = self._skewed(tmp_path)
        with pytest.raises(ConfigurationError, match="software"):
            SpillPartitioner(cfg).run(
                store, tmp_path / "run", on_overflow="cpu"
            )


# ---------------------------------------------------------------------------
# Pre-sizing and skew warning from the ingest sketch
# ---------------------------------------------------------------------------


class TestSketchIntegration:
    def test_skew_warning_on_heavy_hitter(self, tmp_path):
        keys = np.zeros(10_000, dtype=np.uint32)  # one key owns it all
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=2_500)
        with pytest.warns(UserWarning, match="skew"):
            SpillPartitioner(
                PartitionerConfig(num_partitions=16)
            ).run(store, tmp_path / "run")

    def test_uniform_input_does_not_warn(self, tmp_path, recwarn):
        keys = random_keys(10_000, seed=41)
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=2_500)
        SpillPartitioner(PartitionerConfig(num_partitions=16)).run(
            store, tmp_path / "run"
        )
        assert not [
            w for w in recwarn if "skew" in str(w.message)
        ]

    def test_presize_recorded_in_manifest(self, tmp_path):
        keys = random_keys(6_000, seed=42)
        store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=1_500)
        SpillPartitioner(PartitionerConfig(num_partitions=8)).run(
            store, tmp_path / "run"
        )
        manifest = json.loads(
            (tmp_path / "run" / "SPILL_MANIFEST.json").read_text()
        )
        plan = store.sketch.partition_plan(8)
        assert manifest["presize_tuples"] == (
            plan.expected_tuples_per_partition
        )


# ---------------------------------------------------------------------------
# Manifest round-trips
# ---------------------------------------------------------------------------


def test_config_dict_roundtrip():
    cfg = PartitionerConfig(
        num_partitions=512,
        output_mode=OutputMode.PAD,
        layout_mode=LayoutMode.VRID,
        hash_kind=HashKind.RADIX,
        pad_tuples=77,
    )
    assert config_from_dict(config_to_dict(cfg)) == cfg
    assert config_from_dict(json.loads(json.dumps(config_to_dict(cfg)))) == cfg


def test_completed_run_leaves_no_intermediate_files(tmp_path):
    keys = random_keys(5_000, seed=51)
    store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=1_000)
    spill = SpillPartitioner(
        PartitionerConfig(num_partitions=8), max_bytes_in_memory=10_000
    ).run(store, tmp_path / "run")
    names = {p.name for p in spill.path.iterdir()}
    assert names == {"SPILL_MANIFEST.json", "partitions"}
    assert not list(spill.path.glob("lane_counts-*"))
    assert not list(spill.path.glob("*.tmp"))


def test_spill_crc_matches_manifest(tmp_path):
    keys = random_keys(3_000, seed=52)
    store = RelationStore.ingest(keys, tmp_path / "s", chunk_tuples=1_000)
    spill = SpillPartitioner(
        PartitionerConfig(num_partitions=4)
    ).run(store, tmp_path / "run")
    manifest = json.loads((spill.path / "SPILL_MANIFEST.json").read_text())
    for p in range(4):
        if int(spill.counts[p]) == 0:
            continue
        raw = (spill.partitions_dir / f"partition-{p:06d}.keys").read_bytes()
        assert zlib.crc32(raw) == int(manifest["partition_crc32"][f"{p}:keys"])


# ---------------------------------------------------------------------------
# partition_many max_bytes_in_flight (batch-kernel memory cap)
# ---------------------------------------------------------------------------


class TestMaxBytesInFlight:
    def test_outputs_identical_with_cap(self):
        cfg = PartitionerConfig(num_partitions=16)
        relations = [random_keys(500 + 37 * i, seed=i) for i in range(12)]
        unbounded = FpgaPartitioner(cfg).partition_many(relations)
        # cap ≈ two requests' key+payload bytes -> many kernel passes
        capped = FpgaPartitioner(
            cfg, max_bytes_in_flight=2 * 2 * 600 * 4
        ).partition_many(relations)
        assert len(capped) == len(unbounded)
        for a, b in zip(capped, unbounded):
            assert np.array_equal(a.counts, b.counts)
            assert a.bytes_read == b.bytes_read
            for p in range(16):
                assert np.array_equal(
                    np.asarray(a.partition_keys[p]),
                    np.asarray(b.partition_keys[p]),
                )

    def test_cap_smaller_than_one_request_still_progresses(self):
        cfg = PartitionerConfig(num_partitions=8)
        relations = [random_keys(256, seed=i) for i in range(4)]
        outputs = FpgaPartitioner(
            cfg, max_bytes_in_flight=1
        ).partition_many(relations)
        assert len(outputs) == 4
        assert all(o.num_tuples == 256 for o in outputs)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            FpgaPartitioner(max_bytes_in_flight=0)


# ---------------------------------------------------------------------------
# Service + join integration
# ---------------------------------------------------------------------------


class TestServiceSpillRouting:
    def test_over_budget_request_served_via_spill(self, tmp_path):
        from repro.service import PartitionService

        keys = random_keys(60_000, seed=61)
        cfg = PartitionerConfig(num_partitions=32)
        mem = FpgaPartitioner(cfg).partition(keys)
        tracer = Tracer()
        with PartitionService(
            spill_tuples=30_000,
            spill_dir=tmp_path / "svc",
            spill_bytes_in_memory=100_000,
            tracer=tracer,
        ) as service:
            small = service.partition(keys[:512], config=cfg, timeout=60)
            response = service.partition(keys, config=cfg, timeout=120)
        assert small.backend == "fpga"
        assert response.ok and response.backend == "spill"
        assert response.spill is not None
        assert_byte_identical(response.spill, mem)
        assert service.metrics.counters["spilled"] == 1
        names = {s.name for s in tracer.export()}
        assert {"request", "batch", "spill", "spill_merge"} <= names
        # the staging store is dropped once the run owns the data
        assert not list((tmp_path / "svc").glob("store-*"))
        response.spill.cleanup()

    def test_spill_disabled_by_default(self):
        from repro.service import PartitionService

        keys = random_keys(5_000, seed=62)
        with PartitionService() as service:
            response = service.partition(keys, timeout=60)
        assert response.backend == "fpga"
        assert response.spill is None


class TestJoinFromSpill:
    def test_hybrid_join_spilled_matches_in_memory(self, tmp_path):
        from repro.join import hybrid_join, hybrid_join_spilled
        from repro.workloads.relations import make_workload

        workload = make_workload("C", scale=4000)
        cfg = PartitionerConfig(num_partitions=32)
        mem = hybrid_join(workload, config=cfg, collect_payloads=True)
        spiller = SpillPartitioner(cfg, max_bytes_in_memory=50_000)
        r_spill = spiller.run(
            RelationStore.ingest(workload.r, tmp_path / "r"),
            tmp_path / "r-run",
        )
        s_spill = spiller.run(
            RelationStore.ingest(workload.s, tmp_path / "s"),
            tmp_path / "s-run",
        )
        joined = hybrid_join_spilled(r_spill, s_spill, collect_payloads=True)
        assert joined.matches == mem.matches
        assert np.array_equal(
            np.sort(joined.r_payloads), np.sort(mem.r_payloads)
        )
        assert joined.timing.partitioner.startswith("spill")

    def test_fanout_mismatch_rejected(self, tmp_path):
        from repro.join import hybrid_join_spilled

        keys = random_keys(2_000, seed=63)
        a = SpillPartitioner(PartitionerConfig(num_partitions=8)).run(
            RelationStore.ingest(keys, tmp_path / "a"), tmp_path / "a-run"
        )
        b = SpillPartitioner(PartitionerConfig(num_partitions=16)).run(
            RelationStore.ingest(keys, tmp_path / "b"), tmp_path / "b-run"
        )
        with pytest.raises(ConfigurationError, match="fan-out"):
            hybrid_join_spilled(a, b)
