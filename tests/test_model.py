"""Tests for the Section 4.6 analytical model and its 4.8 validation."""

import pytest

from repro.constants import FIGURE9_MEASURED_MTUPLES
from repro.core.model import MEASURED_CALIBRATION, FpgaCostModel
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.errors import ConfigurationError
from repro.platform.machine import XeonFpgaPlatform


@pytest.fixture
def model():
    return FpgaCostModel()


class TestEquation3:
    @pytest.mark.parametrize(
        "width,rate", [(8, 1.6e9), (16, 0.8e9), (32, 0.4e9), (64, 0.2e9)]
    )
    def test_circuit_rate(self, model, width, rate):
        config = PartitionerConfig(tuple_bytes=width)
        assert model.circuit_tuple_rate(config) == pytest.approx(rate)


class TestEquation4:
    def test_latency_is_microseconds(self, model):
        # (5 + 65540 + 4) * 5 ns ~= 328 us
        assert model.latency_seconds() == pytest.approx(327.745e-6, rel=1e-3)


class TestEquation5:
    def test_latency_hidden_for_large_n(self, model):
        config = PartitionerConfig(output_mode=OutputMode.PAD)
        rate = model.process_rate(config, 128 * 10**6)
        assert rate == pytest.approx(1.59e9, rel=0.01)

    def test_latency_dominates_small_n(self, model):
        config = PartitionerConfig(output_mode=OutputMode.PAD)
        small = model.process_rate(config, 1000)
        large = model.process_rate(config, 128 * 10**6)
        assert small < large / 100

    def test_hist_halves_the_rate(self, model):
        n = 128 * 10**6
        pad = model.process_rate(PartitionerConfig(output_mode=OutputMode.PAD), n)
        hist = model.process_rate(
            PartitionerConfig(output_mode=OutputMode.HIST), n
        )
        assert hist == pytest.approx(pad / 2, rel=0.01)

    def test_invalid_n(self, model):
        with pytest.raises(ConfigurationError):
            model.process_rate(PartitionerConfig(), 0)


class TestEquation6:
    def test_section48_arithmetic(self, model):
        """The three worked examples of Section 4.8."""
        hist_rid = PartitionerConfig(
            output_mode=OutputMode.HIST, layout_mode=LayoutMode.RID
        )
        pad_rid = PartitionerConfig(
            output_mode=OutputMode.PAD, layout_mode=LayoutMode.RID
        )
        pad_vrid = PartitionerConfig(
            output_mode=OutputMode.PAD, layout_mode=LayoutMode.VRID
        )
        assert model.memory_rate(hist_rid) == pytest.approx(294e6, rel=0.01)
        assert model.memory_rate(pad_rid) == pytest.approx(435e6, rel=0.01)
        assert model.memory_rate(pad_vrid) == pytest.approx(495e6, rel=0.01)


class TestEquation7:
    def test_prototype_is_memory_bound(self, model):
        """Section 4.6: on the Xeon+FPGA the bandwidth term always
        defines the rate."""
        for output_mode in OutputMode:
            for layout_mode in LayoutMode:
                config = PartitionerConfig(
                    output_mode=output_mode, layout_mode=layout_mode
                )
                assert model.predict(config).memory_bound

    def test_raw_wrapper_is_compute_bound_for_pad(self):
        """Section 4.7: with 25.6 GB/s the circuit term takes over and
        PAD reaches ~1.6 Gtuples/s, HIST ~0.8 (the 1597/799 raw bars
        of Figure 9)."""
        platform = XeonFpgaPlatform.raw_wrapper()
        model = FpgaCostModel(bandwidth=platform.bandwidth)
        pad = model.predict(PartitionerConfig(output_mode=OutputMode.PAD))
        hist = model.predict(PartitionerConfig(output_mode=OutputMode.HIST))
        assert not pad.memory_bound
        assert pad.mtuples_per_second == pytest.approx(1593, rel=0.01)
        assert hist.mtuples_per_second == pytest.approx(796, rel=0.01)


class TestValidationTable:
    def test_within_paper_tolerance(self, model):
        """Section 4.8: 'the model matches the experiments within 10%'
        (HIST/VRID is the worst case at ~11% because the model skips
        the inter-pass pipeline flush — the paper discusses exactly
        this discrepancy)."""
        table = model.validation_table()
        assert set(table) == {"HIST/RID", "HIST/VRID", "PAD/RID", "PAD/VRID"}
        for label, row in table.items():
            assert row["relative_error"] < 0.12, label
        assert table["PAD/RID"]["relative_error"] < 0.01

    def test_measured_values_are_figure9(self, model):
        table = model.validation_table()
        for label, row in table.items():
            assert row["measured_mtuples"] == FIGURE9_MEASURED_MTUPLES[label]

    def test_r_values(self, model):
        table = model.validation_table()
        assert table["HIST/RID"]["r"] == 2.0
        assert table["PAD/VRID"]["r"] == 0.5


class TestCalibration:
    def test_calibrated_matches_figure9(self, model):
        n = 128 * 10**6
        for output_mode in OutputMode:
            for layout_mode in LayoutMode:
                config = PartitionerConfig(
                    output_mode=output_mode, layout_mode=layout_mode
                )
                measured = FIGURE9_MEASURED_MTUPLES[config.mode_label]
                got = model.end_to_end_mtuples(config, n, calibrated=True)
                assert got == pytest.approx(measured, rel=0.01)

    def test_calibration_factors_near_one(self):
        for factor in MEASURED_CALIBRATION.values():
            assert 0.85 < factor < 1.15

    def test_seconds_scale_linearly_at_scale(self, model):
        config = PartitionerConfig(output_mode=OutputMode.PAD)
        t1 = model.partitioning_seconds(128 * 10**6, config)
        t2 = model.partitioning_seconds(256 * 10**6, config)
        assert t2 == pytest.approx(2 * t1, rel=0.01)


class TestDegenerateInputs:
    """Degenerate inputs the adaptive optimizer now leans on: they must
    raise :class:`ConfigurationError` or answer exactly, never divide
    by zero or emit NaN."""

    def test_predict_rejects_zero_and_negative_tuples(self, model):
        config = PartitionerConfig()
        with pytest.raises(ConfigurationError):
            model.predict(config, 0)
        with pytest.raises(ConfigurationError):
            model.predict(config, -5)

    def test_seconds_for_zero_tuples_is_zero(self, model):
        prediction = model.predict(PartitionerConfig())
        assert prediction.seconds_for(0) == 0.0

    def test_seconds_for_zero_with_zero_rate_is_zero(self):
        """A 0-rate prediction must not turn seconds_for(0) into NaN."""
        import dataclasses

        prediction = dataclasses.replace(
            FpgaCostModel().predict(PartitionerConfig()),
            tuples_per_second=0.0,
        )
        result = prediction.seconds_for(0)
        assert result == 0.0 and result == result  # not NaN

    def test_seconds_for_rejects_negative(self, model):
        prediction = model.predict(PartitionerConfig())
        with pytest.raises(ConfigurationError):
            prediction.seconds_for(-1)

    def test_partitioning_seconds_zero_tuples(self, model):
        assert model.partitioning_seconds(0, PartitionerConfig()) == 0.0
        with pytest.raises(ConfigurationError):
            model.partitioning_seconds(-1, PartitionerConfig())
