"""Tests for the hash-family robustness analysis."""

import numpy as np
import pytest

from repro.core.hash_quality import (
    TabulationHash,
    hash_families,
    multiply_shift,
    robust_families,
    robustness_report,
)
from repro.errors import ConfigurationError


class TestMultiplyShift:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint32)
        assert np.array_equal(multiply_shift(keys), multiply_shift(keys))

    def test_output_range(self):
        keys = np.arange(1000, dtype=np.uint32)
        out = multiply_shift(keys, bits=8)
        assert int(out.max()) < 256

    def test_spreads_consecutive_keys(self):
        keys = np.arange(10000, dtype=np.uint32)
        out = multiply_shift(keys, bits=8)
        counts = np.bincount(out, minlength=256)
        assert counts.max() < 3 * counts.mean()

    def test_bits_validated(self):
        with pytest.raises(ConfigurationError):
            multiply_shift(np.arange(4, dtype=np.uint32), bits=0)


class TestTabulation:
    def test_deterministic_per_seed(self):
        keys = np.arange(100, dtype=np.uint32)
        a = TabulationHash(seed=1)(keys)
        b = TabulationHash(seed=1)(keys)
        c = TabulationHash(seed=2)(keys)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_single_byte_change_changes_hash(self):
        tab = TabulationHash()
        a = tab(np.array([0x00000000], dtype=np.uint32))
        b = tab(np.array([0x00000100], dtype=np.uint32))
        assert int(a[0]) != int(b[0])

    def test_spreads_grid_keys(self):
        from repro.workloads.distributions import grid_keys

        tab = TabulationHash()
        out = tab(grid_keys(50000)) & np.uint32(0xFF)
        counts = np.bincount(out, minlength=256)
        assert counts.min() > 0


class TestRobustnessReport:
    @pytest.fixture(scope="class")
    def matrix(self):
        return robustness_report(num_keys=100_000, num_partitions=512)

    def test_radix_is_the_only_fragile_family(self, matrix):
        verdicts = robust_families(matrix)
        assert verdicts == {
            "radix": False,
            "multiply_shift": True,
            "tabulation": True,
            "murmur": True,
        }

    def test_radix_fails_exactly_the_grid_family(self, matrix):
        cells = matrix["radix"]
        assert cells["linear"].balanced
        assert cells["random"].balanced
        assert not cells["grid"].balanced
        assert not cells["reverse_grid"].balanced

    def test_murmur_tightest_balance(self, matrix):
        """The paper's choice is at least as balanced as the cheaper
        robust families on the adversarial inputs."""
        for distribution in ("grid", "reverse_grid"):
            murmur = matrix["murmur"][distribution].report.max_over_mean
            assert murmur < 1.5

    def test_power_of_two_enforced(self):
        with pytest.raises(ConfigurationError):
            robustness_report(num_keys=100, num_partitions=100)

    def test_families_registry(self):
        families = hash_families()
        assert set(families) == {
            "radix", "multiply_shift", "tabulation", "murmur"
        }
        keys = np.arange(16, dtype=np.uint32)
        for fn in families.values():
            assert fn(keys).shape == keys.shape
