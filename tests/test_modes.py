"""Tests for PartitionerConfig and the Section 4.5 modes."""

import pytest

from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.errors import ConfigurationError


class TestValidation:
    @pytest.mark.parametrize("bad", [0, 1, 3, 1000])
    def test_partitions_power_of_two(self, bad):
        with pytest.raises(ConfigurationError):
            PartitionerConfig(num_partitions=bad)

    @pytest.mark.parametrize("bad", [4, 12, 128, 7])
    def test_tuple_widths(self, bad):
        with pytest.raises(ConfigurationError):
            PartitionerConfig(tuple_bytes=bad)

    def test_negative_padding(self):
        with pytest.raises(ConfigurationError):
            PartitionerConfig(pad_tuples=-1)

    def test_vrid_requires_8b_tuples(self):
        with pytest.raises(ConfigurationError):
            PartitionerConfig(layout_mode=LayoutMode.VRID, tuple_bytes=16)

    def test_defaults_are_paper_defaults(self):
        config = PartitionerConfig()
        assert config.num_partitions == 8192
        assert config.tuple_bytes == 8
        assert config.hash_kind is HashKind.MURMUR


class TestGeometry:
    @pytest.mark.parametrize(
        "width,per_line", [(8, 8), (16, 4), (32, 2), (64, 1)]
    )
    def test_tuples_per_line(self, width, per_line):
        config = PartitionerConfig(tuple_bytes=width)
        assert config.tuples_per_line == per_line
        assert config.num_lanes == per_line

    def test_partition_bits(self):
        assert PartitionerConfig(num_partitions=8192).partition_bits == 13
        assert PartitionerConfig(num_partitions=256).partition_bits == 8


class TestModeSemantics:
    def test_mode_factor(self):
        assert PartitionerConfig(output_mode=OutputMode.HIST).mode_factor == 2
        assert PartitionerConfig(output_mode=OutputMode.PAD).mode_factor == 1

    def test_mode_labels(self):
        config = PartitionerConfig(
            output_mode=OutputMode.PAD, layout_mode=LayoutMode.VRID
        )
        assert config.mode_label == "PAD/VRID"

    @pytest.mark.parametrize(
        "output_mode,layout_mode,expected_r",
        [
            (OutputMode.HIST, LayoutMode.RID, 2.0),
            (OutputMode.HIST, LayoutMode.VRID, 1.0),
            (OutputMode.PAD, LayoutMode.RID, 1.0),
            (OutputMode.PAD, LayoutMode.VRID, 0.5),
        ],
    )
    def test_read_write_ratios(self, output_mode, layout_mode, expected_r):
        """Section 4.8's r values for the four modes."""
        config = PartitionerConfig(
            output_mode=output_mode, layout_mode=layout_mode
        )
        assert config.read_write_ratio() == expected_r

    def test_uses_hash(self):
        assert PartitionerConfig(hash_kind=HashKind.MURMUR).uses_hash
        assert not PartitionerConfig(hash_kind=HashKind.RADIX).uses_hash


class TestPadCapacity:
    def test_capacity_covers_fair_share_plus_padding(self):
        config = PartitionerConfig(num_partitions=16, pad_tuples=100)
        capacity = config.partition_capacity(1600)
        assert capacity >= 100 + 100  # fair share + padding
        assert capacity % config.tuples_per_line == 0

    def test_capacity_includes_lane_slack(self):
        # One partial line per lane must fit (flush fragmentation).
        config = PartitionerConfig(num_partitions=16, pad_tuples=0)
        capacity = config.partition_capacity(16)
        assert capacity >= config.num_lanes * config.tuples_per_line

    def test_default_padding_scales_with_input(self):
        config = PartitionerConfig(num_partitions=16)
        small = config.default_pad_tuples(160)
        large = config.default_pad_tuples(160000)
        assert large > small

    def test_explicit_padding_respected(self):
        config = PartitionerConfig(num_partitions=16, pad_tuples=77)
        assert config.default_pad_tuples(10**6) == 77
