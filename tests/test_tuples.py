"""Tests for cache-line packing (repro.core.tuples)."""

import numpy as np
import pytest

from repro.core.tuples import (
    DUMMY_KEY,
    DUMMY_PAYLOAD,
    CacheLine,
    check_payloads_valid,
    lines_needed,
    pack_cache_lines,
    unpack_cache_lines,
)
from repro.errors import ConfigurationError


class TestCacheLine:
    def test_valid_mask(self):
        line = CacheLine(
            keys=np.array([1, 2, DUMMY_KEY], dtype=np.uint32),
            payloads=np.array([1, 2, DUMMY_PAYLOAD], dtype=np.uint32),
        )
        assert list(line.valid_mask) == [True, True, False]
        assert line.num_valid == 2
        assert not line.is_full()

    def test_full_line(self):
        line = CacheLine(
            keys=np.arange(8, dtype=np.uint32),
            payloads=np.arange(8, dtype=np.uint32),
        )
        assert line.is_full()
        assert line.capacity == 8

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            CacheLine(
                keys=np.arange(8, dtype=np.uint32),
                payloads=np.arange(4, dtype=np.uint32),
            )

    def test_dummy_key_alone_does_not_invalidate(self):
        """Any key value is legal data, including the dummy key —
        validity is payload-based."""
        line = CacheLine(
            keys=np.array([DUMMY_KEY], dtype=np.uint32),
            payloads=np.array([5], dtype=np.uint32),
        )
        assert line.num_valid == 1


class TestPacking:
    def test_exact_multiple(self):
        keys = np.arange(16, dtype=np.uint32)
        payloads = np.arange(16, dtype=np.uint32)
        lines = list(pack_cache_lines(keys, payloads, 8))
        assert len(lines) == 2
        assert all(line.is_full() for line in lines)

    def test_partial_last_line_padded(self):
        keys = np.arange(10, dtype=np.uint32)
        payloads = np.arange(10, dtype=np.uint32)
        lines = list(pack_cache_lines(keys, payloads, 8))
        assert len(lines) == 2
        assert lines[1].num_valid == 2
        assert int(lines[1].keys[-1]) == DUMMY_KEY

    def test_unpack_drops_dummies(self):
        keys = np.arange(10, dtype=np.uint32)
        payloads = np.arange(10, dtype=np.uint32)
        lines = list(pack_cache_lines(keys, payloads, 8))
        got_keys, got_payloads = unpack_cache_lines(lines)
        assert np.array_equal(got_keys, keys)
        assert np.array_equal(got_payloads, payloads)

    def test_unpack_empty(self):
        keys, payloads = unpack_cache_lines([])
        assert keys.size == 0 and payloads.size == 0

    def test_reserved_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            check_payloads_valid(
                np.array([0, DUMMY_PAYLOAD], dtype=np.uint32)
            )

    def test_single_tuple_lines(self):
        keys = np.arange(3, dtype=np.uint32)
        payloads = np.arange(3, dtype=np.uint32)
        lines = list(pack_cache_lines(keys, payloads, 1))
        assert len(lines) == 3
        assert all(line.is_full() for line in lines)


class TestLinesNeeded:
    @pytest.mark.parametrize(
        "tuples,per_line,expected",
        [(0, 8, 0), (1, 8, 1), (8, 8, 1), (9, 8, 2), (64, 1, 64)],
    )
    def test_values(self, tuples, per_line, expected):
        assert lines_needed(tuples, per_line) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            lines_needed(-1, 8)
