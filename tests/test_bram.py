"""Tests for the BRAM latency/hazard model (Section 4.2's root cause)."""

import pytest

from repro.core.bram import Bram
from repro.errors import ConfigurationError, SimulationError


class TestBramLatency:
    def test_read_arrives_after_latency(self):
        bram = Bram(depth=8, latency=2)
        bram.poke(3, "v")
        bram.tick()
        bram.issue_read(3)          # cycle 1
        bram.tick()                 # cycle 2: still in flight
        assert not bram.read_data_valid()
        bram.tick()                 # cycle 3: delivered
        assert bram.read_data_valid()
        assert bram.read_data() == "v"

    def test_latency_one(self):
        bram = Bram(depth=4, latency=1)
        bram.poke(0, 42)
        bram.tick()
        bram.issue_read(0)
        bram.tick()
        assert bram.read_data() == 42

    def test_pipelined_reads_every_cycle(self):
        bram = Bram(depth=8, latency=2)
        for addr in range(4):
            bram.poke(addr, addr * 10)
        results = []
        for cycle in range(7):
            bram.tick()
            if bram.read_data_valid():
                results.append(bram.read_data())
            if cycle < 4:
                bram.issue_read(cycle)
        assert results == [0, 10, 20, 30]

    def test_no_read_means_invalid(self):
        bram = Bram(depth=2, latency=1)
        bram.tick()
        assert not bram.read_data_valid()
        assert bram.read_data() is None


class TestBramHazard:
    def test_read_before_write_returns_stale(self):
        """A read issued in the same cycle as a write sees the OLD value
        — the hazard the write combiner's forwarding exists for."""
        bram = Bram(depth=4, latency=2)
        bram.poke(1, "old")
        bram.tick()
        bram.issue_read(1)
        bram.write(1, "new")        # same cycle
        bram.tick()
        bram.tick()
        assert bram.read_data() == "old"

    def test_write_one_cycle_after_issue_also_missed(self):
        bram = Bram(depth=4, latency=2)
        bram.poke(1, "old")
        bram.tick()
        bram.issue_read(1)
        bram.tick()
        bram.write(1, "new")        # 1 cycle after issue
        bram.tick()
        assert bram.read_data() == "old"

    def test_write_before_issue_is_seen(self):
        bram = Bram(depth=4, latency=2)
        bram.tick()
        bram.write(1, "new")
        bram.tick()
        bram.issue_read(1)
        bram.tick()
        bram.tick()
        assert bram.read_data() == "new"


class TestBramPorts:
    def test_two_reads_per_cycle_rejected(self):
        bram = Bram(depth=4, latency=1)
        bram.tick()
        bram.issue_read(0)
        with pytest.raises(SimulationError, match="single read port"):
            bram.issue_read(1)

    def test_two_writes_per_cycle_rejected(self):
        bram = Bram(depth=4, latency=1)
        bram.tick()
        bram.write(0, 1)
        with pytest.raises(SimulationError, match="single write port"):
            bram.write(1, 2)

    def test_address_bounds(self):
        bram = Bram(depth=4, latency=1)
        bram.tick()
        with pytest.raises(SimulationError):
            bram.issue_read(4)
        with pytest.raises(SimulationError):
            bram.write(-1, 0)

    @pytest.mark.parametrize("depth,latency", [(0, 1), (1, 0), (-3, 2)])
    def test_invalid_geometry(self, depth, latency):
        with pytest.raises(ConfigurationError):
            Bram(depth=depth, latency=latency)


class TestBramBackdoor:
    def test_peek_poke(self):
        bram = Bram(depth=2, latency=1)
        bram.poke(0, 7)
        assert bram.peek(0) == 7

    def test_dump_skips_default(self):
        bram = Bram(depth=4, latency=1, fill=0)
        bram.poke(2, 5)
        assert bram.dump() == {2: 5}
