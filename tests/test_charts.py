"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.charts import bar_chart, chart_table_column, series_chart
from repro.bench.reporting import ExperimentTable
from repro.errors import ConfigurationError


class TestBarChart:
    def test_structure(self):
        chart = bar_chart("T", ["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 4

    def test_bars_proportional(self):
        chart = bar_chart("T", ["half", "full"], [5.0, 10.0], width=10)
        half_line, full_line = chart.splitlines()[2:]
        assert half_line.count("#") == 5
        assert full_line.count("#") == 10

    def test_zero_value_gets_no_bar(self):
        chart = bar_chart("T", ["z", "v"], [0.0, 1.0], width=10)
        assert chart.splitlines()[2].count("#") == 0

    def test_values_printed(self):
        chart = bar_chart("T", ["x"], [42.5], unit=" Mt/s")
        assert "42.5 Mt/s" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart("T", ["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart("T", [], [])
        with pytest.raises(ConfigurationError):
            bar_chart("T", ["a"], [-1.0])


class TestSeriesChart:
    def test_structure(self):
        chart = series_chart(
            "T", [1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]},
            height=5, width=20,
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "o up" in lines[-1]
        assert "x down" in lines[-1]

    def test_marks_land_on_extremes(self):
        chart = series_chart(
            "T", [0, 1], {"s": [0.0, 10.0]}, height=5, width=10
        )
        grid_lines = chart.splitlines()[2:7]
        assert "o" in grid_lines[0]   # max at the top row
        assert "o" in grid_lines[-1]  # min at the bottom row

    def test_axis_ticks(self):
        chart = series_chart("T", [1, 5], {"s": [2.0, 8.0]}, height=4)
        assert "8" in chart and "1" in chart and "5" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            series_chart("T", [1, 2], {})
        with pytest.raises(ConfigurationError):
            series_chart("T", [1], {"s": [1.0]})
        with pytest.raises(ConfigurationError):
            series_chart("T", [1, 2], {"s": [1.0]})


class TestTableColumnChart:
    def make_table(self):
        return ExperimentTable(
            experiment_id="Fig X",
            title="demo",
            headers=["config", "rate"],
            rows=[["a", 100.0], ["ref", "-"], ["b", 200.0]],
        )

    def test_skips_non_numeric_cells(self):
        chart = chart_table_column(self.make_table(), "rate")
        assert "ref" not in chart
        assert "a" in chart and "b" in chart

    def test_unknown_column(self):
        with pytest.raises(ConfigurationError):
            chart_table_column(self.make_table(), "nope")
