"""Tests for the morsel-driven execution engine (repro.exec).

The engine's contract is *byte-identity*: for any backend, worker
count and morsel split, the partitioned output must equal the serial
reference exactly — same bytes, same order.  These tests check that
across hash kinds, fan-outs, skew, empty partitions and every consumer
that was wired through the engine (FpgaPartitioner, swwc/CpuPartitioner
and the joins), plus the unit behaviour of the morsel planner and the
histogram merge.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.core.hashing import partition_function, partition_of
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.cpu.partitioner import CpuPartitioner
from repro.cpu.swwc_buffers import swwc_partition
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.exec import (
    ExecutionEngine,
    merge_histograms,
    morsel_histogram,
    morsel_scatter,
    plan_morsels,
    resolve_engine,
)


def _raise_value_error():
    raise ValueError("boom")


def _reference(keys, payloads, num_partitions, use_hash):
    parts = np.asarray(partition_of(keys, num_partitions, use_hash)).astype(
        np.int64
    )
    order = np.argsort(parts, kind="stable")
    return keys[order], payloads[order], np.bincount(
        parts, minlength=num_partitions
    )


def _run_engine(engine, keys, payloads, num_partitions, use_hash, lanes=None):
    task = engine.begin_partition(
        keys, payloads, num_partitions, use_hash, lanes=lanes
    )
    try:
        out_keys, out_payloads = task.scatter()
        return out_keys, out_payloads, task.counts, task.lane_counts
    finally:
        task.close()


class TestByteIdentity:
    @pytest.mark.parametrize("use_hash", [False, True])
    @pytest.mark.parametrize("fanout_bits", [4, 7, 10, 13])
    def test_fanout_sweep(self, rng, use_hash, fanout_bits):
        num_partitions = 1 << fanout_bits
        keys = rng.integers(0, 2**32, size=60_000, dtype=np.uint32)
        payloads = rng.integers(0, 2**32, size=60_000, dtype=np.uint32)
        ref_k, ref_p, ref_c = _reference(keys, payloads, num_partitions, use_hash)
        with ExecutionEngine(workers=4, kind="thread") as engine:
            got_k, got_p, got_c, _ = _run_engine(
                engine, keys, payloads, num_partitions, use_hash
            )
        assert np.array_equal(ref_k, got_k)
        assert np.array_equal(ref_p, got_p)
        assert np.array_equal(ref_c, got_c)

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_backends_agree(self, rng, kind):
        keys = rng.integers(0, 2**32, size=30_000, dtype=np.uint32)
        payloads = np.arange(30_000, dtype=np.uint32)
        ref_k, ref_p, ref_c = _reference(keys, payloads, 256, True)
        with ExecutionEngine(workers=3, kind=kind) as engine:
            got_k, got_p, got_c, _ = _run_engine(
                engine, keys, payloads, 256, True
            )
        assert np.array_equal(ref_k, got_k)
        assert np.array_equal(ref_p, got_p)
        assert np.array_equal(ref_c, got_c)

    def test_zipf_skew(self, rng):
        keys = (rng.zipf(1.3, size=80_000) % (2**32)).astype(np.uint32)
        payloads = np.arange(80_000, dtype=np.uint32)
        for use_hash in (False, True):
            ref_k, ref_p, ref_c = _reference(keys, payloads, 512, use_hash)
            with ExecutionEngine(workers=5, kind="thread") as engine:
                got_k, got_p, got_c, _ = _run_engine(
                    engine, keys, payloads, 512, use_hash
                )
            assert np.array_equal(ref_k, got_k)
            assert np.array_equal(ref_p, got_p)
            assert np.array_equal(ref_c, got_c)

    def test_empty_partitions(self):
        # only 3 of 4096 partitions populated (radix keeps low bits)
        keys = np.tile(
            np.array([0, 5, 4095], dtype=np.uint32), 1000
        )
        payloads = np.arange(keys.shape[0], dtype=np.uint32)
        ref_k, ref_p, ref_c = _reference(keys, payloads, 4096, False)
        with ExecutionEngine(workers=4, kind="thread") as engine:
            got_k, got_p, got_c, _ = _run_engine(
                engine, keys, payloads, 4096, False
            )
        assert np.array_equal(ref_k, got_k)
        assert np.array_equal(ref_p, got_p)
        assert int((got_c > 0).sum()) == 3

    def test_single_tuple_and_tiny_inputs(self):
        for n in (1, 2, 3, 7):
            keys = np.arange(n, dtype=np.uint32)
            payloads = keys[::-1].copy()
            ref_k, ref_p, ref_c = _reference(keys, payloads, 16, True)
            with ExecutionEngine(workers=4, kind="thread") as engine:
                got_k, got_p, got_c, _ = _run_engine(
                    engine, keys, payloads, 16, True
                )
            assert np.array_equal(ref_k, got_k)
            assert np.array_equal(ref_p, got_p)

    def test_lane_counts_match_partitioner(self, rng):
        config = PartitionerConfig(num_partitions=64)
        keys = rng.integers(0, 2**32, size=10_000, dtype=np.uint32)
        payloads = np.arange(10_000, dtype=np.uint32)
        parts = np.asarray(
            partition_of(keys, 64, config.uses_hash)
        ).astype(np.int64)
        lanes = config.num_lanes
        expected = np.zeros((64, lanes), dtype=np.int64)
        lane_of = np.arange(10_000, dtype=np.int64) % lanes
        np.add.at(expected, (parts, lane_of), 1)
        with ExecutionEngine(workers=3, kind="thread") as engine:
            _, _, _, lane_counts = _run_engine(
                engine, keys, payloads, 64, config.uses_hash, lanes=lanes
            )
        assert np.array_equal(expected, lane_counts)


class TestMorselUnits:
    def test_plan_morsels_covers_input(self):
        for n in (0, 1, 10, 1000, 123457):
            for workers in (1, 3, 8):
                chunks = plan_morsels(n, workers, morsel_tuples=100)
                assert chunks[0][0] == 0
                assert chunks[-1][1] == n
                for (a, b), (c, d) in zip(chunks, chunks[1:]):
                    assert b == c and b >= a
                if n:
                    sizes = [hi - lo for lo, hi in chunks]
                    assert max(sizes) - min(sizes) <= 1 or max(sizes) <= 100

    def test_plan_morsels_empty(self):
        assert plan_morsels(0, 4, morsel_tuples=100) == [(0, 0)]

    def test_merge_histograms_prefix_sums(self):
        hists = np.array([[2, 0, 1], [1, 3, 0]], dtype=np.int64)
        counts, partition_base, dest_base = merge_histograms(hists)
        assert counts.tolist() == [3, 3, 1]
        assert partition_base.tolist() == [0, 3, 6]
        # chunk 0 writes partitions at their bases, chunk 1 after it
        assert dest_base.tolist() == [[0, 3, 6], [2, 3, 7]]

    def test_morsel_histogram_and_scatter_roundtrip(self, rng):
        keys = rng.integers(0, 2**32, size=5_000, dtype=np.uint32)
        payloads = np.arange(5_000, dtype=np.uint32)
        parts, hist, _ = morsel_histogram(keys, 32, True)
        counts, _, dest_base = merge_histograms(hist[None, :])
        out_keys = np.empty_like(keys)
        out_payloads = np.empty_like(payloads)
        morsel_scatter(
            keys, payloads, parts, dest_base[0], 32, out_keys, out_payloads
        )
        ref_k, ref_p, ref_c = _reference(keys, payloads, 32, True)
        assert np.array_equal(ref_k, out_keys)
        assert np.array_equal(ref_p, out_payloads)
        assert np.array_equal(ref_c, counts)


class TestEngineApi:
    def test_resolve_engine_specs(self):
        assert resolve_engine(None) is None
        engine = ExecutionEngine(workers=2)
        assert resolve_engine(engine) is engine
        for spec in ("serial", "parallel", "thread", "process"):
            resolved = resolve_engine(spec, threads=2)
            assert isinstance(resolved, ExecutionEngine)
            resolved.close()
        with pytest.raises(ConfigurationError):
            resolve_engine("warp-drive")

    def test_task_close_is_idempotent_and_guards_scatter(self, rng):
        keys = rng.integers(0, 2**32, size=100, dtype=np.uint32)
        payloads = np.arange(100, dtype=np.uint32)
        with ExecutionEngine(workers=2, kind="thread") as engine:
            task = engine.begin_partition(keys, payloads, 16, True)
            task.scatter()
            with pytest.raises(ConfigurationError):
                task.scatter()
            task.close()
            task.close()
            with pytest.raises(ConfigurationError):
                task.scatter()

    def test_map_tasks_preserves_order(self):
        with ExecutionEngine(workers=4, kind="thread") as engine:
            results = engine.map_tasks(lambda x: x * x, range(50))
        assert results == [x * x for x in range(50)]

    def test_submit_returns_future(self):
        with ExecutionEngine(workers=2, kind="thread") as engine:
            future = engine.submit(lambda a, b: a + b, 2, b=3)
            assert future.result(timeout=10) == 5

    def test_submit_serial_runs_inline(self):
        with ExecutionEngine(workers=1, kind="serial") as engine:
            future = engine.submit(lambda: 42)
            assert future.done() and future.result() == 42

    def test_submit_propagates_exceptions(self):
        for kind, workers in (("serial", 1), ("thread", 2)):
            with ExecutionEngine(workers=workers, kind=kind) as engine:
                future = engine.submit(_raise_value_error)
                with pytest.raises(ValueError, match="boom"):
                    future.result(timeout=10)


class TestConsumers:
    def test_fpga_partitioner_engine_matches_legacy(self, rng):
        config = PartitionerConfig(num_partitions=128)
        keys = rng.integers(0, 2**32, size=40_000, dtype=np.uint32)
        payloads = np.arange(40_000, dtype=np.uint32)
        ref = FpgaPartitioner(config).partition(keys, payloads)
        out = FpgaPartitioner(config, engine="thread", threads=4).partition(
            keys, payloads
        )
        assert np.array_equal(ref.counts, out.counts)
        assert np.array_equal(
            ref.lines_per_partition, out.lines_per_partition
        )
        assert ref.dummy_slots == out.dummy_slots
        for a, b in zip(ref.partition_keys, out.partition_keys):
            assert np.array_equal(a, b)
        for a, b in zip(ref.partition_payloads, out.partition_payloads):
            assert np.array_equal(a, b)

    def test_fpga_pad_overflow_parity(self):
        config = PartitionerConfig(
            num_partitions=64, output_mode=OutputMode.PAD
        )
        keys = np.zeros(50_000, dtype=np.uint32)
        payloads = np.arange(50_000, dtype=np.uint32)

        def outcome(partitioner):
            try:
                partitioner.partition(keys, payloads)
                return None
            except PartitionOverflowError as error:
                return (error.partition, error.capacity)

        ref = outcome(FpgaPartitioner(config))
        got = outcome(FpgaPartitioner(config, engine="thread", threads=4))
        assert ref is not None and ref == got

    def test_swwc_engine_matches_serial(self, rng):
        keys = rng.integers(0, 2**32, size=20_000, dtype=np.uint32)
        payloads = np.arange(20_000, dtype=np.uint32)
        ref = swwc_partition(keys, payloads, 128, True, threads=4)
        with ExecutionEngine(workers=4, kind="thread") as engine:
            got = swwc_partition(
                keys, payloads, 128, True, threads=4, engine=engine
            )
        for a, b in zip(ref[0], got[0]):
            assert np.array_equal(a, b)
        for a, b in zip(ref[1], got[1]):
            assert np.array_equal(a, b)
        assert np.array_equal(ref[2], got[2])
        assert ref[3].full_buffer_flushes == got[3].full_buffer_flushes
        assert ref[3].partial_buffer_flushes == got[3].partial_buffer_flushes
        assert ref[3].tuples_written == got[3].tuples_written

    def test_cpu_partitioner_engine_matches(self, rng):
        keys = rng.integers(0, 2**32, size=20_000, dtype=np.uint32)
        ref = CpuPartitioner(num_partitions=256, threads=4).partition(keys)
        got = CpuPartitioner(
            num_partitions=256, threads=4, engine="thread"
        ).partition(keys)
        assert np.array_equal(ref.counts, got.counts)
        for a, b in zip(ref.partition_keys, got.partition_keys):
            assert np.array_equal(a, b)

    def test_joins_match_with_engine(self):
        from repro.join.hybrid_join import hybrid_join
        from repro.join.radix_join import cpu_radix_join
        from repro.workloads.relations import make_workload

        workload = make_workload("A", scale=20_000, seed=3)
        ref = cpu_radix_join(
            workload, num_partitions=64, threads=4, collect_payloads=True
        )
        got = cpu_radix_join(
            workload,
            num_partitions=64,
            threads=4,
            collect_payloads=True,
            engine="thread",
        )
        assert ref.matches == got.matches
        assert np.array_equal(ref.r_payloads, got.r_payloads)
        assert np.array_equal(ref.s_payloads, got.s_payloads)

        ref_h = hybrid_join(workload, threads=4, collect_payloads=True)
        got_h = hybrid_join(
            workload, threads=4, collect_payloads=True, engine="thread"
        )
        assert ref_h.matches == got_h.matches
        assert np.array_equal(ref_h.r_payloads, got_h.r_payloads)
        assert ref_h.timing.partitioner == got_h.timing.partitioner


class TestKernel:
    @pytest.mark.parametrize("use_hash", [False, True])
    @pytest.mark.parametrize("num_partitions", [2, 64, 8192])
    def test_partition_function_bit_exact(self, rng, use_hash, num_partitions):
        keys = rng.integers(0, 2**32, size=4_000, dtype=np.uint32)
        kernel = partition_function(num_partitions, use_hash)
        expected = np.asarray(
            partition_of(keys, num_partitions, use_hash)
        ).astype(np.int64)
        assert np.array_equal(expected, kernel(keys))
        out = np.empty(keys.shape[0], dtype=np.uint16)
        kernel(keys, out=out)
        assert np.array_equal(expected, out.astype(np.int64))

    def test_partition_function_wide_keys(self, rng):
        keys = rng.integers(0, 2**64, size=4_000, dtype=np.uint64)
        kernel = partition_function(1024, True)
        expected = np.asarray(partition_of(keys, 1024, True)).astype(np.int64)
        assert np.array_equal(expected, kernel(keys))

    def test_partition_function_is_memoised(self):
        assert partition_function(64, True) is partition_function(64, True)


class TestBenchSmoke:
    def test_bench_parallel_scaling_artifact(self, tmp_path):
        bench_path = (
            pathlib.Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "bench_parallel_scaling.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_parallel_scaling", bench_path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        artifact = tmp_path / "BENCH_parallel.json"
        written, scaling, fast = module.write_artifact(
            str(artifact),
            tuples=1 << 14,
            lines=256,
            workers=(1, 2),
            quick=True,
        )
        assert written == artifact and artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["benchmark"] == "parallel_scaling"
        assert payload["serial_mtuples"] > 0
        assert payload["best_parallel_mtuples"] > 0
        assert payload["fast_forward_speedup"] > 1.0
        titles = [t["experiment_id"] for t in payload["tables"]]
        assert titles == ["Parallel scaling", "Fast-forward"]
