"""Tests for the write combiner (Section 4.2, Code 4).

The central claims exercised here:

* tuples of the same partition are gathered into full cache lines;
* the fill-rate BRAM's 2-cycle read latency is bridged by forwarding,
  so back-to-back same-partition tuples are handled without stalls
  *and without corruption* — and disabling forwarding demonstrably
  loses tuples;
* the end-of-run flush emits partial lines padded with dummy keys.
"""

import pytest

from repro.core.fifo import Fifo
from repro.core.hash_module import HashedTuple
from repro.core.tuples import DUMMY_PAYLOAD
from repro.core.write_combiner import WriteCombiner


def make_combiner(num_partitions=8, tuples_per_line=8, depth=64, fwd=True):
    inp = Fifo(depth, name="in")
    out = Fifo(depth, name="out")
    wc = WriteCombiner(
        num_partitions=num_partitions,
        tuples_per_line=tuples_per_line,
        input_fifo=inp,
        output_fifo=out,
        enable_forwarding=fwd,
    )
    return wc, inp, out


def feed_and_run(wc, inp, tuples, extra_cycles=10):
    for t in tuples:
        inp.push(t)
    cycles = 0
    while not wc.is_drained() or cycles < extra_cycles:
        wc.tick()
        cycles += 1
        if cycles > 10000:
            raise AssertionError("combiner did not drain")
    return cycles


def flush_all(wc):
    guard = 0
    while wc.flush_cycle():
        guard += 1
        assert guard < 10000


def collect_tuples(out):
    """All (key, payload) pairs in emitted lines, dummies dropped."""
    pairs = []
    while not out.is_empty():
        line = out.pop()
        for k, p in zip(line.keys, line.payloads):
            if int(p) != DUMMY_PAYLOAD:
                pairs.append((int(k), int(p), line.partition))
    return pairs


class TestCombining:
    def test_eight_same_partition_tuples_make_a_line(self):
        wc, inp, out = make_combiner()
        tuples = [HashedTuple(key=i, payload=i, partition=3) for i in range(8)]
        feed_and_run(wc, inp, tuples)
        assert wc.lines_out == 1
        line = out.pop()
        assert line.partition == 3
        assert sorted(map(int, line.keys)) == list(range(8))
        assert line.is_full()

    def test_seven_tuples_make_no_line_until_flush(self):
        wc, inp, out = make_combiner()
        tuples = [HashedTuple(key=i, payload=i, partition=1) for i in range(7)]
        feed_and_run(wc, inp, tuples)
        assert out.is_empty()
        flush_all(wc)
        assert wc.lines_out == 1
        line = out.pop()
        assert line.num_valid == 7
        assert wc.dummy_slots_out == 1

    def test_interleaved_partitions(self):
        wc, inp, out = make_combiner(num_partitions=4)
        tuples = [
            HashedTuple(key=i, payload=i, partition=i % 4) for i in range(32)
        ]
        feed_and_run(wc, inp, tuples)
        assert wc.lines_out == 4  # 8 tuples per partition
        seen = collect_tuples(out)
        assert len(seen) == 32
        for key, payload, partition in seen:
            assert key % 4 == partition

    def test_no_tuple_lost_on_burst(self):
        """Adversarial: 64 consecutive tuples of ONE partition — the
        forwarding path is exercised on every single tuple."""
        wc, inp, out = make_combiner()
        tuples = [HashedTuple(key=i, payload=i, partition=5) for i in range(64)]
        feed_and_run(wc, inp, tuples)
        flush_all(wc)
        seen = collect_tuples(out)
        assert sorted(p for _, p, _ in seen) == list(range(64))
        assert wc.forwarding_hits_1d > 0

    def test_alternating_two_partitions_uses_2d_forwarding(self):
        wc, inp, out = make_combiner()
        tuples = [
            HashedTuple(key=i, payload=i, partition=i % 2) for i in range(32)
        ]
        feed_and_run(wc, inp, tuples)
        flush_all(wc)
        seen = collect_tuples(out)
        assert len(seen) == 32
        assert wc.forwarding_hits_2d > 0

    def test_wide_tuple_single_slot_lines(self):
        # 64 B tuples: every tuple is immediately a full line.
        wc, inp, out = make_combiner(tuples_per_line=1)
        tuples = [HashedTuple(key=i, payload=i, partition=0) for i in range(5)]
        feed_and_run(wc, inp, tuples)
        assert wc.lines_out == 5


class TestForwardingHazard:
    def test_disabled_forwarding_corrupts_bursts(self):
        """Without the forwarding registers the stale fill rate makes
        back-to-back same-partition tuples overwrite each other —
        the exact failure Code 4 lines 6-9 prevent."""
        wc, inp, out = make_combiner(fwd=False)
        tuples = [HashedTuple(key=i, payload=i, partition=2) for i in range(24)]
        feed_and_run(wc, inp, tuples)
        flush_all(wc)
        seen = collect_tuples(out)
        assert len(seen) < 24  # tuples were lost

    def test_disabled_forwarding_safe_when_partitions_spread(self):
        """With >= 3 cycles between same-partition tuples the BRAM
        value is fresh and no forwarding is needed."""
        wc, inp, out = make_combiner(num_partitions=8, fwd=False)
        tuples = [
            HashedTuple(key=i, payload=i, partition=i % 8) for i in range(64)
        ]
        feed_and_run(wc, inp, tuples)
        flush_all(wc)
        assert len(collect_tuples(out)) == 64


class TestFlowControl:
    def test_stalls_when_output_full_no_overflow(self):
        wc, inp, out = make_combiner(depth=64)
        # shrink the output FIFO to force back-pressure
        small_out = Fifo(1, name="small")
        wc.output_fifo = small_out
        tuples = [HashedTuple(key=i, payload=i, partition=0) for i in range(32)]
        for t in tuples:
            inp.push(t)
        for _ in range(40):
            wc.tick()  # never raises FifoOverflowError
        assert wc.stall_cycles > 0
        # drain and finish
        seen = []
        for _ in range(400):
            if not small_out.is_empty():
                seen.append(small_out.pop())
            wc.tick()
        while wc.flush_cycle() or not small_out.is_empty():
            if not small_out.is_empty():
                seen.append(small_out.pop())
        total = sum(line.num_valid for line in seen)
        assert total == 32

    def test_no_stalls_with_roomy_output(self):
        wc, inp, out = make_combiner(depth=512)
        tuples = [
            HashedTuple(key=i, payload=i, partition=i % 3) for i in range(128)
        ]
        feed_and_run(wc, inp, tuples)
        assert wc.stall_cycles == 0


class TestFlush:
    def test_flush_respects_backpressure(self):
        wc, inp, out = make_combiner(num_partitions=8)
        small_out = Fifo(2, name="small")
        wc.output_fifo = small_out
        # one tuple in each partition -> 8 partial lines at flush
        tuples = [HashedTuple(key=p, payload=p, partition=p) for p in range(8)]
        for t in tuples:
            inp.push(t)
        for _ in range(20):
            wc.tick()
        drained = []
        guard = 0
        more = True
        while more or not small_out.is_empty():
            more = wc.flush_cycle()
            if not small_out.is_empty():
                drained.append(small_out.pop())
            guard += 1
            assert guard < 1000
        assert len(drained) == 8
        assert wc.dummy_slots_out == 8 * 7

    def test_flush_done_property(self):
        wc, inp, out = make_combiner(num_partitions=4)
        assert not wc.flush_done
        flush_all(wc)
        assert wc.flush_done

    def test_reset_flush(self):
        wc, inp, out = make_combiner(num_partitions=4)
        flush_all(wc)
        wc.reset_flush()
        assert not wc.flush_done


class TestValidation:
    def test_bad_tuples_per_line(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WriteCombiner(
                num_partitions=4,
                tuples_per_line=0,
                input_fifo=Fifo(4),
                output_fifo=Fifo(4),
            )
