"""End-to-end AFU tests: Section 2.1's deployment flow with real bytes."""

import numpy as np
import pytest

from repro.constants import PAGE_BYTES
from repro.core.afu import PartitionerAfu
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ConfigurationError
from repro.platform.machine import XeonFpgaPlatform
from repro.workloads.relations import make_relation


@pytest.fixture
def platform():
    return XeonFpgaPlatform(memory_bytes=64 * PAGE_BYTES)


def make_afu(platform, **overrides):
    defaults = dict(
        num_partitions=16, output_mode=OutputMode.HIST
    )
    defaults.update(overrides)
    return PartitionerAfu(platform, PartitionerConfig(**defaults))


class TestStaging:
    def test_stage_and_fetch_roundtrip(self, platform):
        afu = make_afu(platform)
        rel = make_relation(300, "random", seed=1)
        region, n = afu.stage_input(rel)
        keys, payloads = afu._fetch_input(region, n)
        assert np.array_equal(keys, rel.keys)
        assert np.array_equal(payloads, rel.payloads)

    def test_staging_marks_cpu_writer(self, platform):
        afu = make_afu(platform)
        region, _ = afu.stage_input(
            make_relation(100, "linear"), region_name="in"
        )
        assert platform.coherence.cpu_read_penalty("in", True) == 1.0

    def test_vrid_stages_keys_only(self, platform):
        afu = make_afu(platform, layout_mode=LayoutMode.VRID)
        rel = make_relation(100, "linear")
        region, _ = afu.stage_input(rel)
        # 100 keys at 4 B, padded to 16-key lines: 7 lines = 448 B used
        rid_afu = make_afu(platform)
        rid_region, _ = rid_afu.stage_input(rel)
        # RID stages 8 B per tuple -> about twice the footprint
        assert rid_region.size_bytes >= region.size_bytes

    def test_empty_relation_rejected(self, platform):
        afu = make_afu(platform)
        with pytest.raises(ConfigurationError):
            afu.stage_input(np.empty(0, dtype=np.uint32))

    def test_wide_tuples_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            PartitionerAfu(
                platform,
                PartitionerConfig(num_partitions=16, tuple_bytes=16),
            )


class TestEndToEnd:
    def test_partitions_match_functional_model(self, platform):
        afu = make_afu(platform)
        rel = make_relation(500, "random", seed=2)
        region, n = afu.stage_input(rel)
        run = afu.run(region, n, output_region_name="parts")

        expected = FpgaPartitioner(afu.config).partition(rel)
        for p in range(16):
            keys, payloads = afu.read_partition(run, p)
            assert sorted(map(int, keys)) == sorted(
                map(int, expected.partition_keys[p])
            ), f"partition {p}"
            # payloads travel with their keys
            pairs_in = dict(zip(map(int, rel.keys), map(int, rel.payloads)))
            for k, v in zip(keys, payloads):
                assert pairs_in[int(k)] == int(v)

    def test_vrid_end_to_end(self, platform):
        afu = make_afu(platform, layout_mode=LayoutMode.VRID)
        rel = make_relation(200, "random", seed=3)
        region, n = afu.stage_input(rel)
        run = afu.run(region, n)
        total = 0
        for p in range(16):
            keys, vrids = afu.read_partition(run, p)
            total += keys.shape[0]
            for k, vrid in zip(keys, vrids):
                assert rel.keys[int(vrid)] == k
        assert total == 200

    def test_output_region_is_fpga_homed(self, platform):
        afu = make_afu(platform)
        region, n = afu.stage_input(make_relation(100, "linear"))
        run = afu.run(region, n, output_region_name="parts")
        penalty = platform.coherence.cpu_read_penalty(
            run.region_name, random_access=True
        )
        assert penalty > 2.0

    def test_qpi_traffic_counted(self, platform):
        afu = make_afu(platform)
        region, n = afu.stage_input(make_relation(128, "linear"))
        platform.qpi.reset_counters()
        run = afu.run(region, n)
        # input lines read + every output line written
        assert platform.qpi.bytes_read >= n * 8
        assert platform.qpi.bytes_written == int(
            run.lines_per_partition.sum()
        ) * 64

    def test_pad_mode(self, platform):
        afu = make_afu(
            platform, output_mode=OutputMode.PAD, pad_tuples=128
        )
        rel = make_relation(256, "random", seed=4)
        region, n = afu.stage_input(rel)
        run = afu.run(region, n)
        collected = sum(
            k.shape[0] for k, _ in afu.read_all_partitions(run)
        )
        assert collected == 256

    def test_partition_index_validated(self, platform):
        afu = make_afu(platform)
        region, n = afu.stage_input(make_relation(50, "linear"))
        run = afu.run(region, n)
        with pytest.raises(ConfigurationError):
            afu.read_partition(run, 16)


class TestMaterialize:
    def test_vrid_materialisation(self, platform):
        from repro.core.materialize import materialize_vrid

        rel = make_relation(300, "random", seed=5)
        payload_column = np.arange(1000, 1300, dtype=np.uint32)
        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.HIST,
            layout_mode=LayoutMode.VRID,
        )
        out = FpgaPartitioner(config).partition(rel.keys)
        materialised = materialize_vrid(out, payload_column)
        assert materialised.bytes_gathered == 300 * 4
        for p in range(16):
            keys, payloads = materialised.partition(p)
            for k, v in zip(keys, payloads):
                position = int(v) - 1000
                assert rel.keys[position] == k

    def test_rid_output_rejected(self):
        from repro.core.materialize import materialize_vrid

        rel = make_relation(50, "linear")
        out = FpgaPartitioner(
            PartitionerConfig(num_partitions=16, output_mode=OutputMode.HIST)
        ).partition(rel)
        with pytest.raises(ConfigurationError):
            materialize_vrid(out, np.zeros(50, dtype=np.uint32))

    def test_short_column_rejected(self):
        from repro.core.materialize import materialize_vrid

        config = PartitionerConfig(
            num_partitions=16,
            output_mode=OutputMode.HIST,
            layout_mode=LayoutMode.VRID,
        )
        out = FpgaPartitioner(config).partition(
            np.arange(1, 51, dtype=np.uint32)
        )
        with pytest.raises(ConfigurationError):
            materialize_vrid(out, np.zeros(10, dtype=np.uint32))

    def test_materialisation_cost_positive(self):
        from repro.core.materialize import materialization_seconds

        cost = materialization_seconds(128 * 10**6)
        assert 0.1 < cost < 10.0
