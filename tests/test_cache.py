"""Tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.cache import SetAssociativeCache


def make_cache(capacity=1024, ways=2, line=64):
    return SetAssociativeCache(capacity_bytes=capacity, ways=ways, line_bytes=line)


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line

    def test_different_lines(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(64) is False

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_geometry(self):
        cache = make_cache(capacity=1024, ways=2, line=64)
        assert cache.num_sets == 8


class TestAssociativityAndLru:
    def test_two_way_holds_two_conflicting_lines(self):
        cache = make_cache(capacity=1024, ways=2, line=64)
        stride = cache.num_sets * 64  # same set index
        cache.access(0)
        cache.access(stride)
        assert cache.access(0) is True
        assert cache.access(stride) is True

    def test_third_conflicting_line_evicts_lru(self):
        cache = make_cache(capacity=1024, ways=2, line=64)
        stride = cache.num_sets * 64
        cache.access(0)          # LRU after next access
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0
        assert cache.access(0) is False
        assert cache.evictions >= 1

    def test_touch_refreshes_lru(self):
        cache = make_cache(capacity=1024, ways=2, line=64)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)           # 0 becomes MRU
        cache.access(2 * stride)  # evicts `stride`
        assert cache.access(0) is True
        assert cache.access(stride) is False


class TestSnoopInterface:
    def test_contains_does_not_touch_lru(self):
        cache = make_cache(capacity=1024, ways=2, line=64)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        assert cache.contains(0)
        cache.access(2 * stride)  # should evict 0 (still LRU)
        assert not cache.contains(0)

    def test_invalidate(self):
        cache = make_cache()
        cache.access(0)
        assert cache.invalidate(0) is True
        assert not cache.contains(0)
        assert cache.invalidate(0) is False

    def test_flush(self):
        cache = make_cache()
        cache.access(0)
        cache.flush()
        assert not cache.contains(0)


class TestFpgaCacheScenario:
    def test_128kb_cache_cannot_hold_512mb_region(self):
        """Why Table 1's snoops to the FPGA socket always miss."""
        from repro.constants import FPGA_CACHE_BYTES, FPGA_CACHE_WAYS

        cache = SetAssociativeCache(FPGA_CACHE_BYTES, FPGA_CACHE_WAYS)
        lines_written = 16384  # 1 MB worth — already 8x the cache
        for i in range(lines_written):
            cache.access(i * 64)
        resident = sum(1 for i in range(lines_written) if cache.contains(i * 64))
        assert resident * 64 <= FPGA_CACHE_BYTES


class TestValidation:
    @pytest.mark.parametrize(
        "capacity,ways,line", [(0, 2, 64), (1024, 0, 64), (1024, 2, 0)]
    )
    def test_positive_geometry(self, capacity, ways, line):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity, ways, line)

    def test_capacity_divisibility(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=1000, ways=2, line_bytes=64)
