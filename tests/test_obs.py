"""Tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import re
import threading

import numpy as np
import pytest

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ReproError
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    critical_path_table,
    interval_coverage,
    prometheus_from_snapshot,
    prometheus_from_spans,
    render_prometheus,
    resolve_tracer,
    stage_rollup,
)
from repro.service import (
    PartitionRequest,
    PartitionService,
    ServiceMetrics,
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Span lifecycle


class TestSpanLifecycle:
    def test_nesting_links_parent_and_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        assert outer.parent_id is None
        names = [span.name for span in tracer.export()]
        assert names == ["inner", "outer"]  # finished in close order

    def test_attributes_events_and_json(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", tuples=128) as span:
            clock.advance(0.5)
            span.add_event("milestone", step=1)
            clock.advance(0.5)
            span.set_attribute("result", "ok")
        data = span.to_dict()
        assert data["name"] == "work"
        assert data["attributes"] == {"tuples": 128, "result": "ok"}
        assert data["duration_s"] == pytest.approx(1.0)
        assert data["events"][0]["name"] == "milestone"
        assert data["events"][0]["time_s"] == pytest.approx(100.5)
        json.dumps(data)  # JSONL line must be JSON-native

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("once")
        span.end()
        first_end = span.end_s
        span.end()
        assert span.end_s == first_end
        assert tracer.finished == 1
        assert len(tracer) == 1

    def test_exception_records_error_and_ends(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        [span] = tracer.export()
        assert span.attributes["error"] == "ValueError"
        assert span.end_s is not None
        assert tracer.current_span() is None

    def test_cross_thread_explicit_parent(self):
        tracer = Tracer()
        root = tracer.start_span("request")
        child_holder = {}

        def worker():
            # a fresh thread has no stack; the link must be explicit
            assert tracer.current_span() is None
            with tracer.span("execute", parent=root) as child:
                child_holder["child"] = child

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.end()
        child = child_holder["child"]
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_record_span_is_retroactive(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.start_span("request")
        span = tracer.record_span(
            "queue_wait", 100.0, 100.25, parent=root, depth=3
        )
        assert span.start_s == 100.0
        assert span.duration_s == pytest.approx(0.25)
        assert span.parent_id == root.span_id
        assert tracer.current_span() is None  # never on the stack
        assert len(tracer) == 1  # already finished

    def test_add_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.add_event("orphan", n=1)  # must not raise
        assert len(tracer) == 0


# ---------------------------------------------------------------------------
# Ring buffer + thread safety


class TestTracerBuffer:
    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record_span(f"s{i}", 0.0, 1.0)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.started == 10
        assert tracer.finished == 10
        assert [s.name for s in tracer.export()] == ["s6", "s7", "s8", "s9"]

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            Tracer(capacity=0)

    def test_drain_empties_buffer(self):
        tracer = Tracer()
        tracer.record_span("a", 0.0, 1.0)
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0
        assert tracer.export() == []

    def test_concurrent_spans_from_many_threads(self):
        tracer = Tracer()
        spans_per_thread = 50
        threads = 8
        barrier = threading.Barrier(threads)

        def worker(worker_id: int):
            barrier.wait()
            for i in range(spans_per_thread):
                with tracer.span(f"w{worker_id}", step=i):
                    pass

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        spans = tracer.export()
        assert len(spans) == threads * spans_per_thread
        assert tracer.finished == threads * spans_per_thread
        ids = [span.span_id for span in spans]
        assert len(set(ids)) == len(ids)  # ids never collide

    def test_to_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record_span("a", 0.0, 1.0, size=1)
        tracer.record_span("b", 1.0, 3.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "a"
        assert records[1]["duration_s"] == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Null tracer


class TestNullTracer:
    def test_resolve_tracer_defaults_to_shared_null(self):
        assert resolve_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False

    def test_null_tracer_is_inert(self, tmp_path):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            span.set_attribute("k", 1).set_attributes(a=2).add_event("e")
            tracer.add_event("e2")
        tracer.record_span("retro", 0.0, 1.0)
        assert tracer.start_span("x") is span  # the shared null span
        assert tracer.current_span() is None
        assert tracer.export() == [] and tracer.drain() == []
        assert len(tracer) == 0
        assert tracer.to_jsonl(tmp_path / "empty.jsonl") == 0


# ---------------------------------------------------------------------------
# Prometheus exposition


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+$"
)


def _check_exposition(text: str) -> None:
    """Structural well-formedness of a text-format 0.0.4 page."""
    assert text.endswith("\n")
    helped, typed = set(), set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
        elif line.startswith("# TYPE "):
            typed.add(line.split()[2])
        else:
            assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"
            base = line.split("{")[0].split(" ")[0]
            family = re.sub(r"_(bucket|sum|count)$", "", base)
            assert base in helped | typed or family in typed, line
    assert helped == typed  # every family declares both


class TestPrometheus:
    def _metrics(self) -> ServiceMetrics:
        clock = FakeClock()
        metrics = ServiceMetrics(clock=clock)
        metrics.increment("completed", 5)
        metrics.observe("queue_wait", 0.002)
        metrics.observe("execute", 0.010)
        metrics.observe("total", 0.012)
        metrics.observe("total", 7.5)
        metrics.set_gauge("queue_depth", 2)
        clock.advance(1.0)
        return metrics

    def test_snapshot_exposition_well_formed(self):
        text = self._metrics().to_prometheus()
        _check_exposition(text)
        assert "repro_service_completed_total 5" in text
        assert "repro_service_queue_depth 2" in text
        assert "# TYPE repro_service_latency_seconds histogram" in text

    def test_histogram_buckets_cumulative_and_consistent(self):
        text = self._metrics().to_prometheus()
        bucket_re = re.compile(
            r'repro_service_latency_seconds_bucket\{stage="total",'
            r'le="([^"]+)"\} (\d+)'
        )
        counts = [int(m.group(2)) for m in bucket_re.finditer(text)]
        assert counts, "no buckets for stage=total"
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert counts[-1] == 2  # +Inf bucket equals _count
        assert 'repro_service_latency_seconds_count{stage="total"} 2' in text

    def test_span_exposition_well_formed(self):
        tracer = Tracer()
        tracer.record_span("execute", 0.0, 0.004)
        tracer.record_span("execute", 0.0, 0.016)
        tracer.record_span("queue_wait", 0.0, 0.001)
        text = prometheus_from_spans(tracer.export())
        _check_exposition(text)
        assert 'repro_span_duration_seconds_count{span="execute"} 2' in text
        assert (
            'repro_span_duration_seconds_sum{span="execute"} 0.02' in text
        )

    def test_render_prometheus_combines_both_pages(self):
        tracer = Tracer()
        tracer.record_span("execute", 0.0, 0.004)
        text = render_prometheus(
            self._metrics().to_dict(), tracer.export()
        )
        _check_exposition(text)
        assert "repro_service_latency_seconds" in text
        assert "repro_span_duration_seconds" in text

    def test_label_escaping(self):
        tracer = Tracer()
        tracer.record_span('we"ird\nname', 0.0, 0.001)
        text = prometheus_from_spans(tracer.export())
        assert '\\"' in text and "\\n" in text


# ---------------------------------------------------------------------------
# Rollups, coverage, critical path


class TestRollups:
    def test_stage_rollup_exact_quantiles(self):
        tracer = Tracer()
        for i in range(1, 11):
            tracer.record_span("execute", 0.0, i / 1000.0)
        rollup = stage_rollup(tracer.export())
        stats = rollup["execute"]
        assert stats["count"] == 10
        assert stats["total_s"] == pytest.approx(0.055)
        assert stats["mean_s"] == pytest.approx(0.0055)
        assert stats["max_s"] == pytest.approx(0.010)
        assert stats["p50_s"] <= stats["p95_s"] <= stats["max_s"]

    def test_interval_coverage_unions_overlaps(self):
        tracer = Tracer()
        tracer.record_span("a", 0.0, 1.0)
        tracer.record_span("b", 0.5, 1.5)  # overlaps a
        tracer.record_span("c", 2.0, 3.0)  # gap 1.5..2.0
        covered, wall, fraction = interval_coverage(tracer.export())
        assert covered == pytest.approx(2.5)
        assert wall == pytest.approx(3.0)
        assert fraction == pytest.approx(2.5 / 3.0)

    def test_interval_coverage_explicit_window(self):
        tracer = Tracer()
        tracer.record_span("a", 1.0, 2.0)
        covered, wall, fraction = interval_coverage(
            tracer.export(), window=(0.0, 4.0)
        )
        assert covered == pytest.approx(1.0)
        assert wall == pytest.approx(4.0)
        assert fraction == pytest.approx(0.25)

    def test_interval_coverage_empty(self):
        assert interval_coverage([]) == (0.0, 0.0, 0.0)

    def test_critical_path_table_sorted_by_total(self):
        tracer = Tracer()
        tracer.record_span("small", 0.0, 0.1)
        tracer.record_span("big", 0.0, 2.0)
        table = critical_path_table(tracer.export(), title="test")
        assert table.headers[0] == "stage"
        assert [row[0] for row in table.rows] == ["big", "small"]
        assert "cover" in table.note
        table.render()  # must not raise


# ---------------------------------------------------------------------------
# End-to-end: tracer threaded through the whole stack


class TestEndToEndTracing:
    def test_traced_service_run_covers_wall_time(self, rng):
        tracer = Tracer()
        config = PartitionerConfig(num_partitions=16)
        relations = [
            rng.integers(0, 2**32, size=2048, dtype=np.uint64).astype(
                np.uint32
            )
            for _ in range(16)
        ]
        with PartitionService(tracer=tracer) as service:
            tickets = [
                service.submit(
                    PartitionRequest(relation=keys, config=config)
                )
                for keys in relations
            ]
            for ticket in tickets:
                assert ticket.result(timeout=60).ok
        spans = tracer.export()
        names = {span.name for span in spans}
        # every pipeline stage is attributed
        assert {"request", "queue_wait", "schedule", "batch",
                "execute", "resolve"} <= names
        assert names & {"fpga.partition", "fpga.partition_many"}
        # the acceptance bar: spans explain >= 95% of the traced window
        _, _, fraction = interval_coverage(spans)
        assert fraction >= 0.95
        requests = [s for s in spans if s.name == "request"]
        assert len(requests) == len(relations)
        assert all(s.attributes["status"] == "ok" for s in requests)
        # queue_wait spans parent under their request span
        request_ids = {s.span_id for s in requests}
        waits = [s for s in spans if s.name == "queue_wait"]
        assert waits and all(s.parent_id in request_ids for s in waits)

    def test_untraced_service_records_nothing(self, rng):
        keys = rng.integers(0, 2**32, size=512, dtype=np.uint64).astype(
            np.uint32
        )
        with PartitionService() as service:
            assert service.submit(
                PartitionRequest(relation=keys)
            ).result(timeout=60).ok
        assert isinstance(service.tracer, NullTracer)
        assert service.tracer.export() == []

    def test_kernel_span_carries_traffic_attributes(self, rng):
        tracer = Tracer()
        keys = rng.integers(0, 2**32, size=4096, dtype=np.uint64).astype(
            np.uint32
        )
        partitioner = FpgaPartitioner(
            PartitionerConfig(num_partitions=16), tracer=tracer
        )
        output = partitioner.partition(keys)
        [span] = [s for s in tracer.export() if s.name == "fpga.partition"]
        assert span.attributes["tuples"] == 4096
        assert span.attributes["bytes_read"] == output.bytes_read
        assert span.attributes["bytes_written"] == output.bytes_written

    def test_engine_morsel_spans_nest_under_kernel(self, rng):
        tracer = Tracer()
        keys = rng.integers(0, 2**32, size=4096, dtype=np.uint64).astype(
            np.uint32
        )
        partitioner = FpgaPartitioner(
            PartitionerConfig(num_partitions=16),
            engine="serial",
            tracer=tracer,
        )
        partitioner.partition(keys)
        partitioner.close()
        spans = tracer.export()
        kernel = [s for s in spans if s.name == "fpga.partition"][0]
        morsels = [s for s in spans if s.name.startswith("morsel.")]
        assert morsels
        assert {s.name for s in morsels} >= {"morsel.histogram"}
        assert all(s.trace_id == kernel.trace_id for s in morsels)
        assert all("worker" in s.attributes for s in morsels)

    def test_circuit_span_carries_cycle_stats(self, rng):
        tracer = Tracer()
        keys = rng.integers(0, 2**32, size=256, dtype=np.uint64).astype(
            np.uint32
        )
        partitioner = FpgaPartitioner(
            PartitionerConfig(num_partitions=8), tracer=tracer
        )
        result = partitioner.simulate(keys)
        [span] = [s for s in tracer.export() if s.name == "circuit.run"]
        assert span.attributes["cycles"] == result.stats.cycles
        assert span.attributes["lines_out"] == result.stats.lines_out
        assert (
            span.attributes["forwarding_hits"]
            == result.stats.forwarding_hits
        )

    def test_scheduler_events_record_decisions(self, rng):
        tracer = Tracer()
        config = PartitionerConfig(num_partitions=16)
        small = [
            rng.integers(0, 2**32, size=256, dtype=np.uint64).astype(
                np.uint32
            )
            for _ in range(8)
        ]
        big = rng.integers(0, 2**32, size=4096, dtype=np.uint64).astype(
            np.uint32
        )
        with PartitionService(
            tracer=tracer, split_tuples=4096, linger_s=0.005
        ) as service:
            tickets = [
                service.submit(PartitionRequest(relation=k, config=config))
                for k in small + [big]
            ]
            for ticket in tickets:
                assert ticket.result(timeout=60).ok
        events = [
            event["name"]
            for span in tracer.export()
            for event in span.events
        ]
        assert "scheduler.split" in events or "scheduler.coalesce" in events
