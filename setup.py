"""Setup shim.

Configuration lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments without the ``wheel``
package (legacy editable installs go through ``setup.py develop``).
"""

from setuptools import setup

setup()
